"""Path-selection strategies for the offline executor.

The paper's BinSym uses depth-first search (Sect. III-B); BFS and a
seeded random strategy are provided for the search-strategy ablation
(``benchmarks/bench_ablation_search.py``).  A strategy is just a
worklist policy: ``push`` pending flip candidates, ``pop`` the next one.
"""

from __future__ import annotations

import heapq
import random
from collections import deque
from typing import Any

__all__ = [
    "Strategy",
    "DepthFirst",
    "BreadthFirst",
    "RandomChoice",
    "CoverageGuided",
    "STRATEGIES",
    "make_strategy",
]


class Strategy:
    """Worklist interface (items are opaque to the strategy)."""

    def push(self, item: Any) -> None:
        raise NotImplementedError

    def pop(self) -> Any:
        raise NotImplementedError

    def items(self) -> list:
        """Non-destructive snapshot of the pending items.

        Order is unspecified (policy-internal); checkpointing re-pushes
        the snapshot into a fresh strategy on resume.
        """
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __bool__(self) -> bool:
        return len(self) > 0


class DepthFirst(Strategy):
    """LIFO worklist — the paper's configuration."""

    def __init__(self) -> None:
        self._items: list = []

    def push(self, item) -> None:
        self._items.append(item)

    def pop(self):
        return self._items.pop()

    def items(self) -> list:
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)


class BreadthFirst(Strategy):
    """FIFO worklist."""

    def __init__(self) -> None:
        self._items: deque = deque()

    def push(self, item) -> None:
        self._items.append(item)

    def pop(self):
        return self._items.popleft()

    def items(self) -> list:
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)


class RandomChoice(Strategy):
    """Uniformly random worklist (seeded for reproducibility)."""

    def __init__(self, seed: int = 0) -> None:
        self._items: list = []
        self._rng = random.Random(seed)

    def push(self, item) -> None:
        self._items.append(item)

    def pop(self):
        index = self._rng.randrange(len(self._items))
        self._items[index], self._items[-1] = self._items[-1], self._items[index]
        return self._items.pop()

    def items(self) -> list:
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)


class CoverageGuided(Strategy):
    """Max-heap on the pusher-supplied *novelty* score.

    The exploration driver scores each frontier entry with the number of
    previously-uncovered branch PCs its parent run discovered; entries
    descending from coverage-expanding runs are explored first.  Items
    without a ``novelty`` attribute score 0.  Ties break FIFO via a
    monotone sequence number, which makes pop order fully deterministic
    — the seed parameter exists only for interface uniformity.
    """

    def __init__(self, seed: int = 0) -> None:
        self._heap: list = []
        self._seq = 0

    def push(self, item) -> None:
        novelty = getattr(item, "novelty", 0)
        heapq.heappush(self._heap, (-novelty, self._seq, item))
        self._seq += 1

    def pop(self):
        return heapq.heappop(self._heap)[2]

    def items(self) -> list:
        return [entry[2] for entry in self._heap]

    def __len__(self) -> int:
        return len(self._heap)


#: name -> factory taking the exploration seed.
STRATEGIES = {
    "dfs": lambda seed: DepthFirst(),
    "bfs": lambda seed: BreadthFirst(),
    "random": RandomChoice,
    "coverage": CoverageGuided,
}


def make_strategy(name: str, seed: int = 0) -> Strategy:
    """Factory: ``dfs`` (default), ``bfs``, ``random`` or ``coverage``."""
    factory = STRATEGIES.get(name)
    if factory is None:
        raise ValueError(f"unknown strategy {name!r}")
    return factory(seed)
