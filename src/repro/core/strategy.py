"""Path-selection strategies for the offline executor.

The paper's BinSym uses depth-first search (Sect. III-B); BFS and a
seeded random strategy are provided for the search-strategy ablation
(``benchmarks/bench_ablation_search.py``).  A strategy is just a
worklist policy: ``push`` pending flip candidates, ``pop`` the next one.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Any, Optional

__all__ = ["Strategy", "DepthFirst", "BreadthFirst", "RandomChoice", "make_strategy"]


class Strategy:
    """Worklist interface (items are opaque to the strategy)."""

    def push(self, item: Any) -> None:
        raise NotImplementedError

    def pop(self) -> Any:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __bool__(self) -> bool:
        return len(self) > 0


class DepthFirst(Strategy):
    """LIFO worklist — the paper's configuration."""

    def __init__(self) -> None:
        self._items: list = []

    def push(self, item) -> None:
        self._items.append(item)

    def pop(self):
        return self._items.pop()

    def __len__(self) -> int:
        return len(self._items)


class BreadthFirst(Strategy):
    """FIFO worklist."""

    def __init__(self) -> None:
        self._items: deque = deque()

    def push(self, item) -> None:
        self._items.append(item)

    def pop(self):
        return self._items.popleft()

    def __len__(self) -> int:
        return len(self._items)


class RandomChoice(Strategy):
    """Uniformly random worklist (seeded for reproducibility)."""

    def __init__(self, seed: int = 0) -> None:
        self._items: list = []
        self._rng = random.Random(seed)

    def push(self, item) -> None:
        self._items.append(item)

    def pop(self):
        index = self._rng.randrange(len(self._items))
        self._items[index], self._items[-1] = self._items[-1], self._items[index]
        return self._items.pop()

    def __len__(self) -> int:
        return len(self._items)


def make_strategy(name: str, seed: int = 0) -> Strategy:
    """Factory: ``dfs`` (default), ``bfs`` or ``random``."""
    if name == "dfs":
        return DepthFirst()
    if name == "bfs":
        return BreadthFirst()
    if name == "random":
        return RandomChoice(seed)
    raise ValueError(f"unknown strategy {name!r}")
