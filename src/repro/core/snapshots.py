"""Copy-on-write execution snapshots for branch-flip resumption.

The paper's offline executor (Sect. III-B) restarts the SUT from the
entry point for every flipped branch, making exploration cost
O(paths x path-length) even though sibling paths share almost their
entire prefix.  This module holds the state the explorer captures at
each branch divergence point so a flipped child can *resume* there and
execute only the suffix:

* :class:`StateSnapshot` — one captured machine state: concrete memory
  pages aliased copy-on-write (:meth:`repro.arch.memory.ByteMemory
  .snapshot_pages`), the register file and shadow overlay shared
  structurally (their values are immutable), the :class:`PathTrace`
  prefix as a shared tuple of records, and the stdout produced so far
  (plus the shadow terms of its input-dependent bytes).

* :class:`SnapshotPool` — an LRU pool with byte-size accounting.  The
  pool is a pure cache: eviction (or a cross-worker miss) makes the
  executor fall back to full re-execution from ``pc = entry``, which
  discovers the identical path, so snapshots never affect *what* is
  explored — only how much of it is re-executed.

Resuming under a *different* input assignment is exact because the
concolic invariant pins every input-dependent datum to a term: a value
whose ``term`` is ``None`` is input-independent along the (identical,
guaranteed-by-the-model) control-flow prefix, and every other value is
re-concretized by evaluating its term under the new assignment with the
reference evaluator (:mod:`repro.smt.evalbv`).  The capture side guards
the cases the invariant cannot cover (a syscall consuming a symbolic
register, input regions discovered after the capture point) by refusing
to capture / resume — falling back to re-execution, never diverging.
"""

from __future__ import annotations

from typing import Mapping, Optional

__all__ = ["StateSnapshot", "SnapshotPool"]

_PAGE_SIZE = 4096

#: Rough per-entry cost of the sparse dict-backed structures (key +
#: value slots + hash bucket); only used for pool byte accounting.
_ENTRY_COST = 96


class StateSnapshot:
    """One captured execution state at a branch divergence point.

    Immutable after construction.  ``pages`` alias the capturing
    memory's bytearrays (copy-on-write protected on the live side);
    ``regs``/``shadow``/``records`` share their immutable values
    structurally.  ``inputs_count`` pins the number of symbolic inputs
    known at capture time: resuming with a different count would skip
    the reset-time re-application of later-discovered inputs, so the
    executor falls back to re-execution instead.
    """

    __slots__ = (
        "pc",
        "instret",
        "pages",
        "shadow",
        "regs",
        "records",
        "stdout",
        "stdout_shadow",
        "inputs_count",
        "byte_size",
        "source",
    )

    def __init__(
        self,
        pc: int,
        instret: int,
        pages: dict,
        shadow: dict,
        regs: tuple,
        records: tuple,
        stdout: bytes,
        stdout_shadow: tuple,
        inputs_count: int,
        source=None,
    ):
        self.pc = pc
        self.instret = instret
        self.pages = pages
        self.shadow = shadow
        self.regs = regs
        self.records = records
        self.stdout = stdout
        self.stdout_shadow = stdout_shadow
        self.inputs_count = inputs_count
        #: Weak reference to the capturing :class:`ByteMemory` (or
        #: None): lets the pool hand the page references back on
        #: eviction while that memory is still executing, un-marking
        #: pages no live snapshot protects.  Dead by the next run —
        #: the interpreter replaces its memory on reset — in which
        #: case releasing is a no-op.
        self.source = source
        # Conservative size estimate: aliased pages are charged in full
        # to every snapshot referencing them (structural sharing means
        # the true marginal cost is lower), so the pool errs towards
        # evicting early rather than blowing its budget.
        self.byte_size = (
            len(pages) * _PAGE_SIZE
            + (len(shadow) + len(records) + len(stdout_shadow)) * _ENTRY_COST
            + len(regs) * _ENTRY_COST
            + len(stdout)
        )


class SnapshotPool:
    """LRU-bounded snapshot store with byte-size accounting.

    Handles are process-local integers: interned terms (inside records,
    shadow values and register terms) hash by identity, so a snapshot is
    only meaningful in the process that captured it.  Each parallel
    exploration worker therefore owns one pool, and the drivers treat a
    missing handle as "re-execute from the entry point".
    """

    def __init__(self, max_bytes: int = 64 * 1024 * 1024):
        self.max_bytes = max_bytes
        # handle -> snapshot, in LRU order (oldest first).
        self._snapshots: dict[int, StateSnapshot] = {}
        self._next_handle = 0
        self.resident_bytes = 0
        self.captured = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._snapshots)

    def add(self, snapshot: StateSnapshot) -> Optional[int]:
        """Admit a snapshot; returns its handle (None if over budget)."""
        if snapshot.byte_size > self.max_bytes:
            return None  # would evict the whole pool for one entry
        while self.resident_bytes + snapshot.byte_size > self.max_bytes:
            self._evict_oldest()
        handle = self._next_handle
        self._next_handle += 1
        self._snapshots[handle] = snapshot
        self.resident_bytes += snapshot.byte_size
        self.captured += 1
        return handle

    def get(self, handle: int) -> Optional[StateSnapshot]:
        """Snapshot for ``handle``, or None when evicted (LRU touch)."""
        snapshot = self._snapshots.get(handle)
        if snapshot is None:
            self.misses += 1
            return None
        del self._snapshots[handle]
        self._snapshots[handle] = snapshot  # move-to-end: recency order
        self.hits += 1
        return snapshot

    def discard(self, handle: int) -> None:
        """Drop an entry the caller found unusable (stale snapshot).

        Reclassifies the preceding :meth:`get` as a miss — the handle
        was served but could not be consumed — and frees the entry: a
        stale snapshot can never become consumable again (symbolic
        inputs only accumulate), so keeping it would only displace
        usable entries.
        """
        snapshot = self._snapshots.pop(handle, None)
        if snapshot is None:
            return
        self.resident_bytes -= snapshot.byte_size
        self.hits -= 1
        self.misses += 1
        self._release(snapshot)

    @staticmethod
    def _release(snapshot: StateSnapshot) -> None:
        """Hand page references back to the capturing memory, if alive."""
        source = snapshot.source
        if source is None:
            return
        memory = source()
        if memory is not None:
            memory.release_pages(snapshot.pages)

    def _evict_oldest(self) -> None:
        handle = next(iter(self._snapshots))
        snapshot = self._snapshots.pop(handle)
        self.resident_bytes -= snapshot.byte_size
        self.evictions += 1
        self._release(snapshot)

    def set_budget(self, max_bytes: int) -> None:
        """Shrink (or grow) the byte budget, evicting down to it.

        Memory-governor rung: eviction is the pool's ordinary, sound
        degradation — later resume attempts miss and fall back to full
        re-execution, discovering the identical path.
        """
        self.max_bytes = max(0, max_bytes)
        while self._snapshots and self.resident_bytes > self.max_bytes:
            self._evict_oldest()

    def clear(self) -> None:
        for snapshot in self._snapshots.values():
            self._release(snapshot)
        self._snapshots.clear()
        self.resident_bytes = 0

    @property
    def statistics(self) -> Mapping[str, int]:
        """Flat counters (exactly summable across workers; the two
        ``pool_*`` entries are point-in-time gauges)."""
        return {
            "snap_captured": self.captured,
            "snap_pool_hits": self.hits,
            "snap_pool_misses": self.misses,
            "snap_pool_evictions": self.evictions,
            "snap_pool_entries": len(self._snapshots),
            "snap_pool_bytes": self.resident_bytes,
        }
