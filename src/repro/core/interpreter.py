"""BinSym's symbolic modular interpreter.

This is the paper's core contribution in executable form: a second
interpreter for the *same* formal ISA specification that

* evaluates the specification's arithmetic/logic primitives in the
  concolic :class:`SymDomain` (the *encode* step of Fig. 1 — expression
  DSL ops map 1:1 onto SMT bitvector terms), and
* gives the stateful primitives a symbolic meaning: the register file
  holds :class:`SymValue`, memory pairs a concrete store with per-byte
  shadow terms, and ``RunIf``/``RunIfElse`` conditions are recorded in
  the path trace before being answered concretely (the *semanticize*
  step).

No instruction-specific code exists here — supporting a new instruction
(Sect. IV's MADD) requires zero changes, which the test-suite asserts.
"""

from __future__ import annotations

from typing import Optional

from ..arch.hart import HaltReason, Hart
from ..arch.memory import ByteMemory, ShadowMemory
from ..loader.image import Image
from ..smt import terms as T
from ..spec.expr import Expr, Val, eval_expr
from ..spec.isa import ISA
from ..spec.staged import StagedStepper
from ..spec import fields
from ..spec.primitives import (
    DecodeAndReadBType,
    DecodeAndReadIType,
    DecodeAndReadR4Type,
    DecodeAndReadRType,
    DecodeAndReadSType,
    DecodeAndReadShamt,
    DecodeJType,
    DecodeUType,
    Ebreak,
    Ecall,
    Fence,
    LoadMem,
    ReadPC,
    ReadRegister,
    StoreMem,
    WritePC,
    WriteRegister,
)
from .concretize import ConcretizationPolicy, concretize_address
from .state import InputAssignment, PathTrace, SymbolicInput
from .symvalue import SymDomain, SymValue

__all__ = ["SymbolicInterpreter"]

_WORD = 0xFFFFFFFF


class SymbolicInterpreter(StagedStepper):
    """One concolic execution of an RV32 program.

    The interpreter is reset per run via :meth:`reset`; symbolic input
    *variables* persist across runs (they identify input bytes), while
    their concrete values come from the run's :class:`InputAssignment`.
    The fetch/execute step loop (staged plans plus the ``--no-staging``
    ablation path) comes from :class:`~repro.spec.staged.StagedStepper`.
    """

    def __init__(
        self,
        isa: ISA,
        image: Image,
        concretization: ConcretizationPolicy = ConcretizationPolicy.PIN,
        force_terms: bool = False,
        staging: bool = True,
    ):
        self.isa = isa
        self.image = image
        self.domain = SymDomain(force_terms=force_terms)
        self.concretization = concretization
        self.staging = staging
        # Identifies SymDomain behaviour for the compiled-plan cache:
        # plans compiled for one SymDomain serve every instance with the
        # same force_terms setting (the domain is otherwise stateless).
        self._domain_key = ("sym", force_terms)
        # word -> (CompiledPlan | None, semantics generator function)
        self._exec_cache: dict[int, tuple] = {}
        # Stable input variables: (address -> SymbolicInput), shared
        # across runs so solver models translate into new inputs.
        self.inputs: dict[int, SymbolicInput] = {}
        # Per-run state, created in reset():
        self.memory: ByteMemory = ByteMemory()
        self.shadow: ShadowMemory[T.Term] = ShadowMemory()
        self.hart: Hart[SymValue] = Hart(zero_value=SymValue(0, 32))
        self.trace = PathTrace()
        self.assignment = InputAssignment()
        self.stdout = bytearray()
        self._current_word = 0
        self._next_pc = 0

    # ------------------------------------------------------------------
    # Run management
    # ------------------------------------------------------------------

    def reset(self, assignment: Optional[InputAssignment] = None) -> None:
        """Prepare a fresh run under the given input assignment."""
        self.memory = ByteMemory()
        self.image.load_into(self.memory)
        self.shadow = ShadowMemory()
        self.hart = Hart(zero_value=SymValue(0, 32))
        self.hart.reset(self.image.entry)
        self.trace = PathTrace()
        self.assignment = assignment if assignment is not None else InputAssignment()
        self.stdout = bytearray()
        # Re-apply previously discovered input regions: inputs persist
        # across runs even if the program marks them only on the first
        # execution path that reaches make_symbolic.
        for sym_input in self.inputs.values():
            value = self.assignment.value_for(sym_input)
            self.memory.write_byte(sym_input.address, value)
            self.shadow.set(sym_input.address, sym_input.variable)

    def run(self, max_steps: int = 1_000_000) -> Hart:
        """Execute until halt; returns the hart with halt bookkeeping."""
        for _ in range(max_steps):
            if self.hart.halted:
                return self.hart
            self.step()
        self.hart.halt(HaltReason.OUT_OF_FUEL)
        return self.hart

    # step() is inherited from StagedStepper.

    # ------------------------------------------------------------------
    # Symbolic input marking (the make_symbolic ecall / harness hook)
    # ------------------------------------------------------------------

    def make_symbolic(self, base: int, length: int) -> None:
        """Mark ``length`` bytes at ``base`` as symbolic input."""
        for offset in range(length):
            address = (base + offset) & _WORD
            sym_input = self.inputs.get(address)
            if sym_input is None:
                variable = T.bv_var(f"in_{address:08x}", 8)
                sym_input = SymbolicInput(
                    address, variable, self.memory.read_byte(address)
                )
                self.inputs[address] = sym_input
            value = self.assignment.value_for(sym_input)
            self.memory.write_byte(address, value)
            self.shadow.set(address, sym_input.variable)

    def input_variables(self) -> list[T.Term]:
        return [sym_input.variable for sym_input in self.inputs.values()]

    # ------------------------------------------------------------------
    # Platform hooks (HostPlatform-compatible, see concrete.syscalls)
    # ------------------------------------------------------------------

    def read_register_int(self, index: int) -> int:
        return self.hart.regs.read(index).concrete

    def write_register_int(self, index: int, value: int) -> None:
        self.hart.regs.write(index, SymValue(value & _WORD, 32))

    def halt_exit(self, code: int) -> None:
        self.hart.halt(HaltReason.EXIT, exit_code=code)

    def _ecall(self) -> None:
        from ..concrete.syscalls import SYS_EXIT, SYS_MAKE_SYMBOLIC, SYS_WRITE

        number = self.read_register_int(17)  # a7
        if number == SYS_EXIT:
            self.halt_exit(self.read_register_int(10))
        elif number == SYS_WRITE:
            base = self.read_register_int(11)
            length = self.read_register_int(12)
            self.stdout.extend(self.memory.read_bytes(base, length))
            self.write_register_int(10, length)
        elif number == SYS_MAKE_SYMBOLIC:
            self.make_symbolic(self.read_register_int(10), self.read_register_int(11))
        else:
            raise ValueError(f"unknown syscall number {number}")

    # ------------------------------------------------------------------
    # Symbolic memory
    # ------------------------------------------------------------------

    def _load(self, address: int, width: int) -> SymValue:
        parts = []
        for i in range(width // 8):
            byte_addr = (address + i) & _WORD
            concrete = self.memory.read_byte(byte_addr)
            shadow = self.shadow.get(byte_addr)
            parts.append(SymValue(concrete, 8, shadow))
        return self.domain.concat_bytes(parts)

    def _store(self, address: int, value: SymValue, width: int) -> None:
        for i in range(width // 8):
            byte_addr = (address + i) & _WORD
            self.memory.write_byte(byte_addr, (value.concrete >> (8 * i)) & 0xFF)
            if value.term is None:
                self.shadow.set(byte_addr, None)
            else:
                self.shadow.set(
                    byte_addr, T.extract(value.term, 8 * i + 7, 8 * i)
                )

    # ------------------------------------------------------------------
    # PlanHost interface: staged replay over concolic machine state.
    # Each method is the staged twin of the matching `handle` case and
    # must stay behaviourally identical to it (the differential tests in
    # tests/test_staged.py pin this).
    # ------------------------------------------------------------------

    def plan_reg(self, index: int) -> SymValue:
        return self.hart.regs.read(index)

    def plan_pc(self) -> SymValue:
        return SymValue(self.hart.pc, 32)

    def plan_load(self, width: int, address: SymValue) -> SymValue:
        concrete_addr = concretize_address(
            address, self.concretization, self.trace, self.hart.pc
        )
        return self._load(concrete_addr, width)

    def plan_write_reg(self, index: int, value: SymValue) -> None:
        self.hart.regs.write(index, value)

    def plan_write_pc(self, value: SymValue) -> None:
        if value.term is not None:
            pinned = T.eq(value.term, T.bv(value.concrete, 32))
            self.trace.add_assumption(pinned, self.hart.pc)
        self._next_pc = value.concrete

    def plan_store(self, width: int, address: SymValue, value: SymValue) -> None:
        concrete_addr = concretize_address(
            address, self.concretization, self.trace, self.hart.pc
        )
        self._store(concrete_addr, value, width)

    def plan_branch(self, value: SymValue) -> bool:
        """Staged twin of :meth:`branch`: the condition is pre-evaluated."""
        taken = bool(value.concrete)
        if value.term is not None and not value.term.is_const:
            self.trace.add_branch(value.condition_term(), self.hart.pc, taken)
        return taken

    def plan_ecall(self) -> None:
        self._ecall()

    def plan_ebreak(self) -> None:
        self.hart.halt(HaltReason.EBREAK)

    def plan_fence(self) -> None:
        pass

    # ------------------------------------------------------------------
    # Handler interface
    # ------------------------------------------------------------------

    def _reg_leaf(self, index: int) -> Val:
        return Val(self.hart.regs.read(index), 32)

    def _eval(self, expr: Expr) -> SymValue:
        return eval_expr(expr, self.domain)

    def branch(self, cond: Expr) -> bool:
        """Record a symbolic branch decision; answer concolically."""
        value = self._eval(cond)
        taken = bool(value.concrete)
        # Constant terms (possible under force_terms) are not symbolic
        # decisions — only record conditions the solver could flip.
        if value.term is not None and not value.term.is_const:
            self.trace.add_branch(value.condition_term(), self.hart.pc, taken)
        return taken

    def handle(self, primitive):
        word = self._current_word
        if isinstance(primitive, DecodeAndReadRType):
            return (
                self._reg_leaf(fields.rs1(word)),
                self._reg_leaf(fields.rs2(word)),
                fields.rd(word),
            )
        if isinstance(primitive, DecodeAndReadR4Type):
            return (
                self._reg_leaf(fields.rs1(word)),
                self._reg_leaf(fields.rs2(word)),
                self._reg_leaf(fields.rs3(word)),
                fields.rd(word),
            )
        if isinstance(primitive, DecodeAndReadIType):
            return (
                Val(fields.imm_i(word), 32),
                self._reg_leaf(fields.rs1(word)),
                fields.rd(word),
            )
        if isinstance(primitive, DecodeAndReadShamt):
            return (
                Val(fields.shamt(word), 32),
                self._reg_leaf(fields.rs1(word)),
                fields.rd(word),
            )
        if isinstance(primitive, DecodeAndReadSType):
            return (
                Val(fields.imm_s(word), 32),
                self._reg_leaf(fields.rs1(word)),
                self._reg_leaf(fields.rs2(word)),
            )
        if isinstance(primitive, DecodeAndReadBType):
            return (
                Val(fields.imm_b(word), 32),
                self._reg_leaf(fields.rs1(word)),
                self._reg_leaf(fields.rs2(word)),
            )
        if isinstance(primitive, DecodeUType):
            return Val(fields.imm_u(word), 32), fields.rd(word)
        if isinstance(primitive, DecodeJType):
            return Val(fields.imm_j(word), 32), fields.rd(word)
        if isinstance(primitive, ReadRegister):
            return self._reg_leaf(primitive.index)
        if isinstance(primitive, WriteRegister):
            self.hart.regs.write(primitive.index, self._eval(primitive.value))
            return None
        if isinstance(primitive, ReadPC):
            return Val(SymValue(self.hart.pc, 32), 32)
        if isinstance(primitive, WritePC):
            target = self._eval(primitive.value)
            if target.term is not None:
                # Indirect jump through symbolic data: concretize like a
                # memory address (pin under the PIN policy).
                pinned = T.eq(target.term, T.bv(target.concrete, 32))
                self.trace.add_assumption(pinned, self.hart.pc)
            self._next_pc = target.concrete
            return None
        if isinstance(primitive, LoadMem):
            address = self._eval(primitive.addr)
            concrete_addr = concretize_address(
                address, self.concretization, self.trace, self.hart.pc
            )
            return Val(self._load(concrete_addr, primitive.width), primitive.width)
        if isinstance(primitive, StoreMem):
            address = self._eval(primitive.addr)
            concrete_addr = concretize_address(
                address, self.concretization, self.trace, self.hart.pc
            )
            self._store(concrete_addr, self._eval(primitive.value), primitive.width)
            return None
        if isinstance(primitive, Ecall):
            self._ecall()
            return None
        if isinstance(primitive, Ebreak):
            self.hart.halt(HaltReason.EBREAK)
            return None
        if isinstance(primitive, Fence):
            return None
        raise NotImplementedError(f"unhandled primitive {primitive!r}")
