"""BinSym's symbolic modular interpreter.

This is the paper's core contribution in executable form: a second
interpreter for the *same* formal ISA specification that

* evaluates the specification's arithmetic/logic primitives in the
  concolic :class:`SymDomain` (the *encode* step of Fig. 1 — expression
  DSL ops map 1:1 onto SMT bitvector terms), and
* gives the stateful primitives a symbolic meaning: the register file
  holds :class:`SymValue`, memory pairs a concrete store with per-byte
  shadow terms, and ``RunIf``/``RunIfElse`` conditions are recorded in
  the path trace before being answered concretely (the *semanticize*
  step).

No instruction-specific code exists here — supporting a new instruction
(Sect. IV's MADD) requires zero changes, which the test-suite asserts.
"""

from __future__ import annotations

import weakref
from typing import Optional

from ..arch.hart import HaltReason, Hart
from ..arch.memory import ByteMemory, ShadowMemory
from ..loader.image import Image
from ..smt import terms as T
from ..smt.evalbv import evaluate
from ..spec.expr import Expr, Val, eval_expr
from ..spec.isa import ISA
from ..spec.staged import StagedStepper
from ..spec import fields
from ..spec.primitives import (
    DecodeAndReadBType,
    DecodeAndReadIType,
    DecodeAndReadR4Type,
    DecodeAndReadRType,
    DecodeAndReadSType,
    DecodeAndReadShamt,
    DecodeJType,
    DecodeUType,
    Ebreak,
    Ecall,
    Fence,
    LoadMem,
    ReadPC,
    ReadRegister,
    StoreMem,
    WritePC,
    WriteRegister,
)
from .concretize import ConcretizationPolicy, concretize_address
from .snapshots import SnapshotPool, StateSnapshot
from .state import InputAssignment, PathTrace, SymbolicInput
from .symvalue import SymDomain, SymValue

__all__ = ["SymbolicInterpreter"]

_WORD = 0xFFFFFFFF


class SymbolicInterpreter(StagedStepper):
    """One concolic execution of an RV32 program.

    The interpreter is reset per run via :meth:`reset`; symbolic input
    *variables* persist across runs (they identify input bytes), while
    their concrete values come from the run's :class:`InputAssignment`.
    The fetch/execute step loop (staged plans plus the ``--no-staging``
    ablation path) comes from :class:`~repro.spec.staged.StagedStepper`.
    """

    def __init__(
        self,
        isa: ISA,
        image: Image,
        concretization: ConcretizationPolicy = ConcretizationPolicy.PIN,
        force_terms: bool = False,
        staging: bool = True,
        superblocks: bool = True,
    ):
        self.isa = isa
        self.image = image
        self.domain = SymDomain(force_terms=force_terms)
        self.concretization = concretization
        self.staging = staging
        self._init_superblocks(superblocks)
        # Identifies SymDomain behaviour for the compiled-plan cache:
        # plans compiled for one SymDomain serve every instance with the
        # same force_terms setting (the domain is otherwise stateless).
        self._domain_key = ("sym", force_terms)
        # word -> (CompiledPlan | None, semantics generator function)
        self._exec_cache: dict[int, tuple] = {}
        # Stable input variables: (address -> SymbolicInput), shared
        # across runs so solver models translate into new inputs.
        self.inputs: dict[int, SymbolicInput] = {}
        # Per-run state, created in reset():
        self.memory: ByteMemory = ByteMemory()
        self.shadow: ShadowMemory[T.Term] = ShadowMemory()
        self.hart: Hart[SymValue] = Hart(zero_value=SymValue(0, 32))
        self.trace = PathTrace()
        self.assignment = InputAssignment()
        self.stdout = bytearray()
        self._current_word = 0
        self._next_pc = 0
        # Snapshot capture state (see configure_capture): stdout bytes
        # that are input-dependent carry their shadow term so a resumed
        # run can re-concretize them under a new assignment.
        self.stdout_shadow: list[tuple[int, T.Term]] = []
        self.captured: dict[int, int] = {}
        self._capture_pool: Optional[SnapshotPool] = None
        self._capture_from = 0
        self._capture_instret = -1
        self._capture_base = 0
        self._capture_handle: Optional[int] = None
        self._snapshot_unsafe = False
        #: instret of the last state mutation / assumption record — the
        #: runtime check behind the capture layer's instruction-start
        #: invariant (see :meth:`_note_flippable`).
        self._effect_instret = -1

    # ------------------------------------------------------------------
    # Run management
    # ------------------------------------------------------------------

    def reset(self, assignment: Optional[InputAssignment] = None) -> None:
        """Prepare a fresh run under the given input assignment."""
        self.memory = ByteMemory()
        self.image.load_into(self.memory)
        self.shadow = ShadowMemory()
        self.hart = Hart(zero_value=SymValue(0, 32))
        self.hart.reset(self.image.entry)
        self.trace = PathTrace()
        self.assignment = assignment if assignment is not None else InputAssignment()
        self.stdout = bytearray()
        self.stdout_shadow = []
        self.captured = {}
        self._capture_instret = -1
        self._capture_handle = None
        self._snapshot_unsafe = False
        self._effect_instret = -1
        # Arm superblocks while memory holds the pristine image: the
        # input replay below then lands on *watched* pages, so inputs
        # overlapping block code force revalidation via the epoch guard.
        self._sb_begin_run(self.hart.pc)
        # Re-apply previously discovered input regions: inputs persist
        # across runs even if the program marks them only on the first
        # execution path that reaches make_symbolic.
        for sym_input in self.inputs.values():
            value = self.assignment.value_for(sym_input)
            self.memory.write_byte(sym_input.address, value)
            self.shadow.set(sym_input.address, sym_input.variable)

    def run(self, max_steps: int = 1_000_000) -> Hart:
        """Execute until halt; returns the hart with halt bookkeeping.

        The loop is bounded by retired instructions (``instret``), not
        iterations: superblock dispatch (``_sb_step``) retires several
        instructions per iteration, and ``_fuel_limit`` lets it
        deoptimize rather than overshoot, so OUT_OF_FUEL paths truncate
        at exactly the same instruction with superblocks on or off.
        Bare ``step()`` calls outside ``run`` always retire exactly one
        instruction.
        """
        hart = self.hart
        limit = hart.instret + max_steps
        self._fuel_limit = limit
        step = self._sb_step
        while hart.instret < limit:
            if hart.halted:
                return hart
            step()
        if hart.halted:
            return hart
        hart.halt(HaltReason.OUT_OF_FUEL)
        return hart

    # step() is inherited from StagedStepper.

    # ------------------------------------------------------------------
    # Copy-on-write snapshots (capture at branch records, resume later)
    # ------------------------------------------------------------------

    def configure_capture(
        self, pool: Optional[SnapshotPool], capture_from: int = 0
    ) -> None:
        """Arm (or disarm, ``pool=None``) snapshot capture for this run.

        While armed, every flippable branch record with index >=
        ``capture_from`` registers a :class:`StateSnapshot` of the
        machine state at the *start of the recording instruction* in
        ``pool``; :attr:`captured` maps record index -> pool handle.
        ``capture_from`` mirrors the exploration bound: records below it
        are never flipped, so their snapshots would be dead weight.
        """
        self._capture_pool = pool
        self._capture_from = capture_from

    def _note_flippable(self) -> None:
        """Capture hook, called as each flippable branch is recorded.

        Machine state at this point still equals the state at the start
        of the current instruction: the formal semantics evaluate every
        ``RunIf``/``RunIfElse`` condition before any register or memory
        effect of the instruction (this holds for nested branches too,
        e.g. the div/rem zero- and overflow-checks), so resuming means
        re-executing the whole instruction — which re-derives this
        record and flips naturally under the new assignment.  All
        records one instruction produces therefore share one snapshot,
        whose trace prefix is truncated to the instruction start.

        The invariant is *checked*, not assumed: every mutating or
        assumption-recording primitive stamps ``_effect_instret``, so a
        custom instruction that writes state (or pins an address)
        before branching simply skips capture here — its children fall
        back to full re-execution instead of resuming corrupt state.
        """
        instret = self.hart.instret
        index = len(self.trace.records)
        if instret != self._capture_instret:
            self._capture_instret = instret
            self._capture_base = index
            self._capture_handle = None
        if index < self._capture_from or self._effect_instret == instret:
            return
        handle = self._capture_handle
        if handle is None:
            snapshot = StateSnapshot(
                pc=self.hart.pc,
                instret=instret,
                pages=self.memory.snapshot_pages(),
                shadow=self.shadow.snapshot_state(),
                regs=tuple(self.hart.regs.snapshot()),
                records=tuple(self.trace.records[: self._capture_base]),
                stdout=bytes(self.stdout),
                stdout_shadow=tuple(self.stdout_shadow),
                inputs_count=len(self.inputs),
                source=weakref.ref(self.memory),
            )
            handle = self._capture_pool.add(snapshot)
            if handle is None:
                # Over the whole pool budget: undo the page references
                # and stop capturing — resident state only grows, so
                # every later snapshot of this run would be rejected
                # (and rebuilt, and leaked) the same way.
                self.memory.release_pages(snapshot.pages)
                self._capture_pool = None
                return
            self._capture_handle = handle
        self.captured[index] = handle

    def resume(
        self,
        snapshot: StateSnapshot,
        assignment: InputAssignment,
        env: dict[T.Term, int],
    ) -> None:
        """Restore a captured state, re-concretized under ``assignment``.

        ``env`` must assign every input variable.  Exactness rests on
        the concolic invariant: the new assignment satisfies the prefix
        path condition, so control flow up to the divergence point is
        identical to a full re-execution — term-free state is therefore
        input-independent and identical, and every term-carrying datum
        (registers, shadowed memory bytes, symbolic stdout bytes) is
        re-evaluated under ``env`` with the reference evaluator,
        yielding exactly the values the full re-execution would have
        computed.  Aliased snapshot pages are adopted copy-on-write;
        the re-concretizing writes below privatize only the input pages.
        """
        self.memory = ByteMemory.adopt(snapshot.pages)
        self.shadow = ShadowMemory.adopt(snapshot.shadow)
        hart: Hart[SymValue] = Hart(zero_value=SymValue(0, 32), pc=snapshot.pc)
        hart.instret = snapshot.instret
        regs = hart.regs
        for index, value in enumerate(snapshot.regs):
            if index and value.term is not None:
                value = SymValue(
                    evaluate(value.term, env), value.width, value.term
                )
            regs.write(index, value)
        self.hart = hart
        self.trace = PathTrace()
        self.trace.records = list(snapshot.records)
        self.assignment = assignment
        self.stdout = bytearray(snapshot.stdout)
        for offset, term in snapshot.stdout_shadow:
            self.stdout[offset] = evaluate(term, env) & 0xFF
        memory = self.memory
        for address, term in snapshot.shadow.items():
            memory.write_byte(address, evaluate(term, env))
        self.stdout_shadow = list(snapshot.stdout_shadow)
        self.captured = {}
        self._capture_instret = -1
        self._capture_handle = None
        self._snapshot_unsafe = False
        self._effect_instret = -1
        # Resumes start mid-path (at a branch instruction, never a block
        # entry), so they don't count toward entry hotness; and their
        # memory descends from a mid-run capture whose code bytes may
        # differ from the image, so every resolution is revalidated.
        self._sb_begin_run(revalidate=True)

    # ------------------------------------------------------------------
    # Symbolic input marking (the make_symbolic ecall / harness hook)
    # ------------------------------------------------------------------

    def make_symbolic(self, base: int, length: int) -> None:
        """Mark ``length`` bytes at ``base`` as symbolic input."""
        for offset in range(length):
            address = (base + offset) & _WORD
            sym_input = self.inputs.get(address)
            if sym_input is None:
                variable = T.bv_var(f"in_{address:08x}", 8)
                sym_input = SymbolicInput(
                    address, variable, self.memory.read_byte(address)
                )
                self.inputs[address] = sym_input
            value = self.assignment.value_for(sym_input)
            self.memory.write_byte(address, value)
            self.shadow.set(address, sym_input.variable)

    def input_variables(self) -> list[T.Term]:
        return [sym_input.variable for sym_input in self.inputs.values()]

    # ------------------------------------------------------------------
    # Platform hooks (HostPlatform-compatible, see concrete.syscalls)
    # ------------------------------------------------------------------

    def read_register_int(self, index: int) -> int:
        return self.hart.regs.read(index).concrete

    def write_register_int(self, index: int, value: int) -> None:
        self.hart.regs.write(index, SymValue(value & _WORD, 32))

    def halt_exit(self, code: int) -> None:
        self.hart.halt(HaltReason.EXIT, exit_code=code)

    def _consumes_symbolic(self, *indices: int) -> bool:
        """Snapshot-safety guard for syscalls.

        Syscalls consume register values *concretely* without pinning
        them in the trace; if a consumed register is input-dependent,
        downstream state is no longer re-derivable from terms alone, so
        capture is disabled for the rest of the run — children past
        this point simply fall back to full re-execution.
        """
        return any(self.hart.regs.read(index).term is not None for index in indices)

    def _ecall(self) -> None:
        from ..concrete.syscalls import SYS_EXIT, SYS_MAKE_SYMBOLIC, SYS_WRITE

        self._effect_instret = self.hart.instret
        number = self.read_register_int(17)  # a7
        if self._consumes_symbolic(17):
            self._snapshot_unsafe = True
        if number == SYS_EXIT:
            self.halt_exit(self.read_register_int(10))
        elif number == SYS_WRITE:
            if self._consumes_symbolic(11, 12):
                self._snapshot_unsafe = True
            base = self.read_register_int(11)
            length = self.read_register_int(12)
            if self._capture_pool is not None:
                # Input-dependent output bytes keep their shadow term
                # so a snapshot resume can re-concretize the captured
                # stdout; with capture disarmed nothing can consume the
                # overlay scan, so skip it.
                offset = len(self.stdout)
                shadow = self.shadow
                for i in range(length):
                    term = shadow.get(base + i)
                    if term is not None:
                        self.stdout_shadow.append((offset + i, term))
            self.stdout.extend(self.memory.read_bytes(base, length))
            self.write_register_int(10, length)
        elif number == SYS_MAKE_SYMBOLIC:
            if self._consumes_symbolic(10, 11):
                self._snapshot_unsafe = True
            self.make_symbolic(self.read_register_int(10), self.read_register_int(11))
        else:
            raise ValueError(f"unknown syscall number {number}")

    # ------------------------------------------------------------------
    # Symbolic memory
    # ------------------------------------------------------------------

    def _load(self, address: int, width: int) -> SymValue:
        parts = []
        for i in range(width // 8):
            byte_addr = (address + i) & _WORD
            concrete = self.memory.read_byte(byte_addr)
            shadow = self.shadow.get(byte_addr)
            parts.append(SymValue(concrete, 8, shadow))
        return self.domain.concat_bytes(parts)

    def _store(self, address: int, value: SymValue, width: int) -> None:
        for i in range(width // 8):
            byte_addr = (address + i) & _WORD
            self.memory.write_byte(byte_addr, (value.concrete >> (8 * i)) & 0xFF)
            if value.term is None:
                self.shadow.set(byte_addr, None)
            else:
                self.shadow.set(
                    byte_addr, T.extract(value.term, 8 * i + 7, 8 * i)
                )

    # ------------------------------------------------------------------
    # PlanHost interface: staged replay over concolic machine state.
    # Each method is the staged twin of the matching `handle` case and
    # must stay behaviourally identical to it (the differential tests in
    # tests/test_staged.py pin this).
    # ------------------------------------------------------------------

    def plan_reg(self, index: int) -> SymValue:
        return self.hart.regs.read(index)

    def plan_pc(self) -> SymValue:
        return SymValue(self.hart.pc, 32)

    def plan_load(self, width: int, address: SymValue) -> SymValue:
        if address.term is not None:
            # Concretization may pin an assumption record; a capture
            # later in the same instruction must not claim
            # instruction-start state (see _note_flippable).
            self._effect_instret = self.hart.instret
        concrete_addr = concretize_address(
            address, self.concretization, self.trace, self.hart.pc
        )
        return self._load(concrete_addr, width)

    def plan_write_reg(self, index: int, value: SymValue) -> None:
        self._effect_instret = self.hart.instret
        self.hart.regs.write(index, value)

    def plan_write_pc(self, value: SymValue) -> None:
        self._effect_instret = self.hart.instret
        if value.term is not None:
            pinned = T.eq(value.term, T.bv(value.concrete, 32))
            self.trace.add_assumption(pinned, self.hart.pc)
        self._next_pc = value.concrete

    def plan_store(self, width: int, address: SymValue, value: SymValue) -> None:
        self._effect_instret = self.hart.instret
        concrete_addr = concretize_address(
            address, self.concretization, self.trace, self.hart.pc
        )
        self._store(concrete_addr, value, width)

    def plan_branch(self, value: SymValue) -> bool:
        """Staged twin of :meth:`branch`: the condition is pre-evaluated."""
        taken = bool(value.concrete)
        if value.term is not None and not value.term.is_const:
            if self._capture_pool is not None and not self._snapshot_unsafe:
                self._note_flippable()
            self.trace.add_branch(value.condition_term(), self.hart.pc, taken)
        return taken

    def plan_ecall(self) -> None:
        self._ecall()

    def plan_ebreak(self) -> None:
        self.hart.halt(HaltReason.EBREAK)

    def plan_fence(self) -> None:
        pass

    # ------------------------------------------------------------------
    # Handler interface
    # ------------------------------------------------------------------

    def _reg_leaf(self, index: int) -> Val:
        return Val(self.hart.regs.read(index), 32)

    def _eval(self, expr: Expr) -> SymValue:
        return eval_expr(expr, self.domain)

    def branch(self, cond: Expr) -> bool:
        """Record a symbolic branch decision; answer concolically."""
        value = self._eval(cond)
        taken = bool(value.concrete)
        # Constant terms (possible under force_terms) are not symbolic
        # decisions — only record conditions the solver could flip.
        if value.term is not None and not value.term.is_const:
            if self._capture_pool is not None and not self._snapshot_unsafe:
                self._note_flippable()
            self.trace.add_branch(value.condition_term(), self.hart.pc, taken)
        return taken

    def handle(self, primitive):
        word = self._current_word
        if isinstance(primitive, DecodeAndReadRType):
            return (
                self._reg_leaf(fields.rs1(word)),
                self._reg_leaf(fields.rs2(word)),
                fields.rd(word),
            )
        if isinstance(primitive, DecodeAndReadR4Type):
            return (
                self._reg_leaf(fields.rs1(word)),
                self._reg_leaf(fields.rs2(word)),
                self._reg_leaf(fields.rs3(word)),
                fields.rd(word),
            )
        if isinstance(primitive, DecodeAndReadIType):
            return (
                Val(fields.imm_i(word), 32),
                self._reg_leaf(fields.rs1(word)),
                fields.rd(word),
            )
        if isinstance(primitive, DecodeAndReadShamt):
            return (
                Val(fields.shamt(word), 32),
                self._reg_leaf(fields.rs1(word)),
                fields.rd(word),
            )
        if isinstance(primitive, DecodeAndReadSType):
            return (
                Val(fields.imm_s(word), 32),
                self._reg_leaf(fields.rs1(word)),
                self._reg_leaf(fields.rs2(word)),
            )
        if isinstance(primitive, DecodeAndReadBType):
            return (
                Val(fields.imm_b(word), 32),
                self._reg_leaf(fields.rs1(word)),
                self._reg_leaf(fields.rs2(word)),
            )
        if isinstance(primitive, DecodeUType):
            return Val(fields.imm_u(word), 32), fields.rd(word)
        if isinstance(primitive, DecodeJType):
            return Val(fields.imm_j(word), 32), fields.rd(word)
        if isinstance(primitive, ReadRegister):
            return self._reg_leaf(primitive.index)
        if isinstance(primitive, WriteRegister):
            self._effect_instret = self.hart.instret
            self.hart.regs.write(primitive.index, self._eval(primitive.value))
            return None
        if isinstance(primitive, ReadPC):
            return Val(SymValue(self.hart.pc, 32), 32)
        if isinstance(primitive, WritePC):
            self._effect_instret = self.hart.instret
            target = self._eval(primitive.value)
            if target.term is not None:
                # Indirect jump through symbolic data: concretize like a
                # memory address (pin under the PIN policy).
                pinned = T.eq(target.term, T.bv(target.concrete, 32))
                self.trace.add_assumption(pinned, self.hart.pc)
            self._next_pc = target.concrete
            return None
        if isinstance(primitive, LoadMem):
            address = self._eval(primitive.addr)
            if address.term is not None:
                self._effect_instret = self.hart.instret
            concrete_addr = concretize_address(
                address, self.concretization, self.trace, self.hart.pc
            )
            return Val(self._load(concrete_addr, primitive.width), primitive.width)
        if isinstance(primitive, StoreMem):
            self._effect_instret = self.hart.instret
            address = self._eval(primitive.addr)
            concrete_addr = concretize_address(
                address, self.concretization, self.trace, self.hart.pc
            )
            self._store(concrete_addr, self._eval(primitive.value), primitive.width)
            return None
        if isinstance(primitive, Ecall):
            self._ecall()
            return None
        if isinstance(primitive, Ebreak):
            self.hart.halt(HaltReason.EBREAK)
            return None
        if isinstance(primitive, Fence):
            return None
        raise NotImplementedError(f"unhandled primitive {primitive!r}")
