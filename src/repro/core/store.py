"""Crash-safe persistent cross-run artifact store (``--store DIR``).

The on-disk tier behind :class:`repro.smt.solver.QueryCache` and
:mod:`repro.core.certificates`: query verdicts (SAT models, minimal
UNSAT cores) and per-path certificates survive the process, so a second
campaign over the same SUT — or a concurrent campaign sharing the
directory — pays only for what changed.  The design premise is that a
disk cache able to serve a stale, torn or poisoned entry is worse than
no cache, so the contract is verification-first:

* **content-addressed, restart-stable keys** —
  :func:`repro.smt.digest.store_key` over the conjunct set's structural
  term digests, so a key computed in run N+1 finds run N's entry;
* **crash-safe writes** — ``O_EXCL`` tmp + flush + fsync +
  ``os.replace`` (the :mod:`repro.core.checkpoint` pattern), one writer
  per process with pid-unique tmp names, so concurrent campaigns never
  torn-read each other and a kill mid-write leaves either the old file
  or the new one, never a hybrid;
* **verify-on-read** — every file carries a format-version header and
  a blake2b digest over its canonical JSON; SAT models are additionally
  re-evaluated against the querying conditions and UNSAT cores must
  re-intern to a subset of the query (optionally re-derived through the
  proof-logging solver + DRAT checker under ``--certify``).  Any
  failure **quarantines** the file (renamed ``*.quarantined``, counted
  in ``store_quarantines``) and falls through to a fresh solve;
* **fail-soft I/O** — ``OSError``/``ENOSPC`` on any store operation
  disables the tier for the rest of the run (``store_disabled``,
  logged once to stderr), never failing the campaign; a version-skewed
  file is rejected explicitly (``store_skews``) and left in place for
  the build that understands it.

Fault injection (``torn=`` truncates a file after the atomic rename,
``iofail=`` raises ``OSError`` at an I/O site, ``corrupt=`` bit-flips
the serialized state after its digest is taken) goes through the same
seams the chaos gate (``tools/chaos_check.py --store``) uses to prove
all of the above; ``tools/store_fsck.py`` scans, repairs and GCs a
store offline with the same validators.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
from typing import Optional

from ..smt import terms as T
from ..smt.digest import store_key, term_digest
from ..smt.evalbv import EvalError, evaluate
from ..smt.solver import Model, Result, Solver

__all__ = [
    "ArtifactStore",
    "FORMAT_VERSION",
    "validate_query_state",
    "validate_certificate_state",
    "read_wrapper",
    "state_digest",
]

#: Rejecting version skew explicitly beats misparsing a future layout.
FORMAT_VERSION = 1

_KEY_HEX = 32  # blake2b digest_size=16 as hex


def state_digest(state: dict) -> str:
    """Digest of a file's state block (checkpoint.py's canonical form)."""
    encoded = json.dumps(state, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(encoded.encode("utf-8"), digest_size=16).hexdigest()


def read_wrapper(path: str) -> dict:
    """Parse and digest-check one store file; ``ValueError`` on any rot."""
    with open(path, "r", encoding="utf-8") as handle:
        raw = handle.read()
    try:
        wrapper = json.loads(raw)
    except ValueError:
        raise ValueError("not valid JSON (torn or corrupt write)") from None
    if not isinstance(wrapper, dict):
        raise ValueError("wrapper is not an object")
    state = wrapper.get("state")
    digest = wrapper.get("digest")
    if not isinstance(state, dict) or not isinstance(digest, str):
        raise ValueError("wrapper missing state/digest")
    if state_digest(state) != digest:
        raise ValueError("state digest mismatch (bit rot or tampering)")
    return state


def _check_version(state: dict) -> None:
    """Raise the dedicated skew signal for a wrong format version."""
    version = state.get("version")
    if version != FORMAT_VERSION:
        raise _VersionSkew(f"format version {version!r} != {FORMAT_VERSION}")


class _VersionSkew(Exception):
    """A structurally sound file written by a different format version."""


def validate_query_state(state: dict, name: Optional[str] = None) -> dict:
    """Structural validation of a query entry's state block.

    Everything checkable without the querying conditions: version,
    kind, key shape (and match against the file name when given),
    verdict enum, model binding shapes, core table round trip and core
    digest agreement.  Returns the parsed payload pieces for the
    caller (``{"verdict", "model", "core"}``); raises ``ValueError``
    on malformed content and :class:`_VersionSkew` on version skew.
    """
    _check_version(state)
    if state.get("kind") != "query":
        raise ValueError(f"unexpected kind {state.get('kind')!r}")
    key = state.get("key")
    if not (isinstance(key, str) and len(key) == _KEY_HEX):
        raise ValueError("malformed key field")
    if name is not None and key != name:
        raise ValueError(f"key field {key} does not match file name {name}")
    verdict = state.get("verdict")
    if verdict not in ("sat", "unsat"):
        raise ValueError(f"unknown verdict {verdict!r}")
    model = state.get("model")
    core = None
    if verdict == "sat":
        if not isinstance(model, list):
            raise ValueError("sat entry without model bindings")
        for binding in model:
            if not (
                isinstance(binding, list)
                and len(binding) == 3
                and isinstance(binding[0], str)
                and isinstance(binding[1], int)
                and binding[1] >= 0
                and isinstance(binding[2], int)
            ):
                raise ValueError(f"malformed model binding {binding!r}")
    else:
        terms = T.deserialize_terms(state.get("core"))  # ValueError on rot
        if not terms:
            raise ValueError("empty UNSAT core (would subsume everything)")
        core = frozenset(terms)
        digests = state.get("core_digests")
        if not isinstance(digests, list) or sorted(digests) != sorted(
            term_digest(term) for term in core
        ):
            raise ValueError("core digests disagree with core terms")
    return {"verdict": verdict, "model": model, "core": core}


def validate_certificate_state(state: dict) -> dict:
    """Structural validation of a certificate entry; returns the cert."""
    _check_version(state)
    if state.get("kind") != "cert":
        raise ValueError(f"unexpected kind {state.get('kind')!r}")
    from .certificates import certificate_from_state

    cert_state = state.get("cert")
    if not isinstance(cert_state, dict):
        raise ValueError("missing cert payload")
    certificate_from_state(cert_state)  # ValueError on malformed fields
    return cert_state


class ArtifactStore:
    """One process's handle on a shared persistent artifact directory.

    Layout::

        DIR/
          queries/<key>.json          one verdict per content-addressed key
          certs/<digest>.json         per-path certificates (certify runs)
          *.quarantined               failed verification, renamed aside
          *.tmp.<pid>.<seq>           in-flight writes (GC'd by store_fsck)

    Reads open per-call handles (fork-safe: a worker inherits only the
    directory path); writes are single-writer-per-process by pid-unique
    ``O_EXCL`` tmp names.  Every public method is total: failures turn
    into counted misses / quarantines / tier disablement, never into
    exceptions reaching the exploration drivers.
    """

    def __init__(self, root: str, certify: bool = False):
        self.root = root
        self.certify = certify
        self.hits = 0
        self.stores = 0
        self.quarantines = 0
        self.skews = 0
        self.disabled = False
        self._skew_logged = False
        self._fault_hook = None  # hook(op, ordinal) -> "torn"|"iofail"|None
        self._corruptor = None  # hook(kind, ordinal) -> bool
        self._ordinals = {"read": 0, "write": 0, "corrupt": 0}
        self._seq = 0
        try:
            os.makedirs(self._queries_dir, exist_ok=True)
            os.makedirs(self._certs_dir, exist_ok=True)
        except OSError as exc:
            self._disable(exc)

    # -- wiring --------------------------------------------------------

    @property
    def _queries_dir(self) -> str:
        return os.path.join(self.root, "queries")

    @property
    def _certs_dir(self) -> str:
        return os.path.join(self.root, "certs")

    def set_fault_hook(self, hook) -> None:
        """Install the ``torn=``/``iofail=`` schedule (chaos testing).

        ``hook(op, ordinal) -> "torn" | "iofail" | None`` with ``op``
        one of ``"read"``/``"write"``; ``"iofail"`` raises ``OSError``
        at that I/O site (tier disables, run continues), ``"torn"``
        truncates the just-renamed file (the *next* run must detect and
        quarantine it).  ``None`` uninstalls.
        """
        self._fault_hook = hook

    def set_corruptor(self, hook) -> None:
        """Install the ``corrupt=`` poisoning predicate.

        Same shape as :meth:`repro.smt.solver.QueryCache.set_corruptor`:
        ``hook(kind, ordinal) -> bool`` with kind ``"store"``; a True
        answer bit-flips the serialized state *after* its digest is
        taken, so the poison is detectable on the next verified read.
        """
        self._corruptor = hook

    @property
    def statistics(self) -> dict:
        """Flat counters, exactly summable across workers."""
        return {
            "store_hits": self.hits,
            "store_stores": self.stores,
            "store_quarantines": self.quarantines,
            "store_skews": self.skews,
            "store_disabled": int(self.disabled),
        }

    # -- failure policy ------------------------------------------------

    def _disable(self, exc: BaseException) -> None:
        """Fail-soft: drop the tier for the rest of the run, log once."""
        if not self.disabled:
            self.disabled = True
            print(
                f"store: disabled for this run after I/O failure: {exc}",
                file=sys.stderr,
            )

    def _fault(self, op: str) -> Optional[str]:
        if self._fault_hook is None:
            return None
        ordinal = self._ordinals[op]
        self._ordinals[op] = ordinal + 1
        verdict = self._fault_hook(op, ordinal)
        if verdict == "iofail":
            raise OSError(f"injected store I/O failure ({op} #{ordinal})")
        return verdict

    def _quarantine(self, path: str) -> None:
        """Rename a failed-verification file aside; never serve it again."""
        self.quarantines += 1
        try:
            os.replace(path, path + ".quarantined")
        except OSError as exc:
            self._disable(exc)

    def _skew(self, path: str) -> None:
        """Explicit version-skew rejection: counted, file left in place."""
        self.skews += 1
        if not self._skew_logged:
            self._skew_logged = True
            print(
                f"store: ignoring entries with foreign format version "
                f"(first: {path})",
                file=sys.stderr,
            )

    # -- crash-safe writes ---------------------------------------------

    def _write_file(self, path: str) -> bool:
        """Should a write to ``path`` proceed? (dedup: first writer wins)"""
        return not os.path.exists(path)

    def _atomic_write(self, path: str, state: dict) -> bool:
        """tmp + fsync + rename; True when the entry landed on disk."""
        digest = state_digest(state)
        encoded = json.dumps(state, sort_keys=True, separators=(",", ":"))
        if self._corruptor is not None:
            ordinal = self._ordinals["corrupt"]
            self._ordinals["corrupt"] = ordinal + 1
            if self._corruptor("store", ordinal):
                # Poison *after* the digest: flip the last digit-ish
                # byte of the state so verify-on-read must trip.
                encoded = encoded[:-2] + ("0" if encoded[-2] != "0" else "1") + encoded[-1]
        body = '{"digest": %s, "state": %s}' % (json.dumps(digest), encoded)
        tmp = f"{path}.tmp.{os.getpid()}.{self._seq}"
        self._seq += 1
        torn = None
        try:
            torn = self._fault("write")
            fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(body)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except OSError as exc:
            self._disable(exc)
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        if torn == "torn":
            # Simulated barrier-less power cut: the rename landed but
            # half the payload did not.  Verify-on-read must catch it.
            try:
                os.truncate(path, max(1, len(body) // 2))
            except OSError as exc:
                self._disable(exc)
        return True

    # -- query verdicts ------------------------------------------------

    def save_query(
        self,
        key: frozenset,
        verdict: Result,
        model: Optional[Model] = None,
        core: Optional[frozenset] = None,
    ) -> None:
        """Write-through one freshly solved verdict (fire and forget)."""
        if self.disabled or verdict not in (Result.SAT, Result.UNSAT):
            return
        name = store_key(key)
        path = os.path.join(self._queries_dir, name + ".json")
        try:
            if not self._write_file(path):
                return
        except OSError as exc:
            self._disable(exc)
            return
        state: dict = {
            "version": FORMAT_VERSION,
            "kind": "query",
            "key": name,
            "verdict": verdict.value,
            "model": None,
            "core": None,
            "core_digests": None,
            "certified": bool(self.certify),
        }
        if verdict is Result.SAT:
            if model is None:
                return
            state["model"] = sorted(
                [var.payload, var.width, value] for var, value in model.items()
            )
        else:
            core_terms = sorted(core if core is not None else key, key=term_digest)
            if not core_terms:
                return
            state["core"] = T.serialize_terms(core_terms)
            state["core_digests"] = [term_digest(term) for term in core_terms]
        if self._atomic_write(path, state):
            self.stores += 1

    def load_query(self, key: frozenset, conditions):
        """Verified warm lookup: ``(Result, model, core)`` or ``None``.

        Every returned answer passed the full trust chain for its kind;
        any failure quarantined the file (or rejected the skew) and
        reads as a miss, so the caller falls through to a fresh solve.
        """
        if self.disabled:
            return None
        name = store_key(key)
        path = os.path.join(self._queries_dir, name + ".json")
        try:
            self._fault("read")
            state = read_wrapper(path)
        except FileNotFoundError:
            return None
        except OSError as exc:
            self._disable(exc)
            return None
        except ValueError:
            self._quarantine(path)
            return None
        try:
            parsed = validate_query_state(state, name)
        except _VersionSkew:
            self._skew(path)
            return None
        except ValueError:
            self._quarantine(path)
            return None
        if parsed["verdict"] == "sat":
            witness = self._verify_sat(parsed["model"], key, conditions)
            if witness is None:
                self._quarantine(path)
                return None
            self.hits += 1
            return Result.SAT, witness, None
        core = parsed["core"]
        if not self._verify_unsat(core, key):
            self._quarantine(path)
            return None
        self.hits += 1
        return Result.UNSAT, None, core

    @staticmethod
    def _verify_sat(bindings, key: frozenset, conditions) -> Optional[Model]:
        """Semantic check: the stored model must satisfy the query.

        The witness is completed with zeros and restricted to the
        query's own variables (exactly like in-memory model reuse), so
        stale foreign bindings can never leak into model stitching.
        """
        values = {}
        for name, width, value in bindings:
            var = T.bv_var(name, width) if width else T.bool_var(name)
            values[var] = value
        variables: set = set()
        for term in key:
            variables |= term.free_vars()
        completed = {var: values.get(var, 0) for var in variables}
        try:
            if all(evaluate(term, completed) for term in conditions):
                return Model(completed)
        except EvalError:
            pass
        return None

    def _verify_unsat(self, core: frozenset, key: frozenset) -> bool:
        """The stored core must be a subset of the query it answers.

        Subset holds by *interned identity* — the deserialized terms
        re-interned onto this process's live terms — so a core that
        passes is made of exactly the query's own conjuncts; its UNSAT
        claim is then re-derived through the proof-logging solver and
        the DRAT checker when ``--certify`` asked for evidence.
        """
        if not core <= key:
            return False
        if self.certify:
            checker = Solver(certify=True, proof_log=True)
            if checker.check(sorted(core, key=term_digest)) is not Result.UNSAT:
                return False
        return True

    # -- certificates --------------------------------------------------

    def save_certificate(self, cert_state: dict) -> None:
        """Persist one path certificate (content-addressed, idempotent)."""
        if self.disabled:
            return
        state = {"version": FORMAT_VERSION, "kind": "cert", "cert": cert_state}
        name = state_digest({"cert": cert_state})
        path = os.path.join(self._certs_dir, name + ".json")
        try:
            if not self._write_file(path):
                return
        except OSError as exc:
            self._disable(exc)
            return
        if self._atomic_write(path, state):
            self.stores += 1

    def load_certificates(self) -> list:
        """All verified certificate payloads (fsck/service consumers)."""
        out = []
        if self.disabled:
            return out
        try:
            names = sorted(os.listdir(self._certs_dir))
        except OSError as exc:
            self._disable(exc)
            return out
        for name in names:
            if not name.endswith(".json"):
                continue
            path = os.path.join(self._certs_dir, name)
            try:
                self._fault("read")
                state = read_wrapper(path)
                out.append(validate_certificate_state(state))
            except _VersionSkew:
                self._skew(path)
            except ValueError:
                self._quarantine(path)
            except OSError as exc:
                self._disable(exc)
                return out
        return out
