"""Memory governor: an RSS-sampling degradation ladder for exploration.

PR 7's fault-tolerance contract bounds what a *crash* can cost; this
module bounds what *memory pressure* can cost.  A
:class:`MemoryGovernor` watches the driver process's resident set size
against a ``--memory-budget`` and, whenever a sample exceeds the
budget, walks one rung down a degradation ladder of pre-registered
actions.  The exploration drivers (serial and every pool worker — RSS
is per-process, so each owns its own governor) register three rungs,
most-reversible first:

1. **shrink the snapshot pool** — halve
   :attr:`repro.core.snapshots.SnapshotPool.max_bytes` and evict down
   to it.  Sound by the PR 5 eviction contract: a missing snapshot
   falls back to full re-execution of the identical path.
2. **tighten the memo caches** — halve the
   :class:`repro.smt.solver.QueryCache` capacities (memo entries,
   UNSAT-subsumption window, model-reuse pool) and the staged-plan /
   superblock caches.  Sound because all of these are pure memos: an
   evicted entry is re-derived, never re-answered differently.
3. **disable snapshot capture** — stop admitting new snapshots
   entirely (and drop the pool).  The most drastic rung: exploration
   degenerates to PR 1-style full re-execution per path, which is
   exactly the behaviour ``--no-snapshots`` ships as an ablation.

Every rung application is counted (``degradations`` in the exploration
result, per-rung counters in ``--stats``), so a run that returned the
full path set *slowly* under pressure is distinguishable from a healthy
one — the anytime contract's "never a silent loss" extended to memory.

RSS sampling uses ``/proc/self/statm`` (Linux) and falls back to
``resource.getrusage`` peak-RSS elsewhere; no third-party dependency.
Sampling is throttled (every ``check_interval``-th ``maybe_step``), so
the per-run overhead is one integer comparison.
"""

from __future__ import annotations

import os
from typing import Callable, Optional

__all__ = ["MemoryGovernor", "build_exploration_governor", "rss_bytes"]

try:  # pragma: no cover - platform probe
    _PAGE_BYTES = os.sysconf("SC_PAGE_SIZE")
except (ValueError, OSError, AttributeError):  # pragma: no cover
    _PAGE_BYTES = 4096


def rss_bytes() -> int:
    """Resident set size of this process, in bytes (best effort).

    ``/proc/self/statm`` field 2 is current RSS in pages; the
    ``getrusage`` fallback reports *peak* RSS (KiB on Linux), which
    over-approximates — the conservative direction for a governor.
    Returns 0 when neither source is available, which disables
    pressure detection rather than crashing the exploration.
    """
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as handle:
            return int(handle.read().split()[1]) * _PAGE_BYTES
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    except Exception:  # pragma: no cover - no resource module
        return 0


class MemoryGovernor:
    """Walks a ladder of degradation actions when RSS exceeds a budget.

    ``rungs`` are ``(name, action)`` pairs, most-reversible first; each
    action fires **once**, on its own pressure sample, so one spike
    never jumps straight to the bottom of the ladder.  Pressure beyond
    the last rung is still counted (``pressure_events``) — the caller
    can see that the governor ran out of things to give up.

    ``sampler`` is injectable for deterministic tests and for the
    ``memhog=`` chaos schedules.
    """

    def __init__(
        self,
        budget_bytes: int,
        check_interval: int = 4,
        sampler: Optional[Callable[[], int]] = None,
    ):
        self.budget_bytes = budget_bytes
        self.check_interval = max(1, check_interval)
        self._sampler = sampler if sampler is not None else rss_bytes
        self._rungs: list[tuple[str, Callable[[], None]]] = []
        self._next_rung = 0
        self._tick = 0
        self.samples = 0
        self.pressure_events = 0
        self.rungs_applied = 0
        self._rung_counts: dict[str, int] = {}

    def add_rung(self, name: str, action: Callable[[], None]) -> None:
        self._rungs.append((name, action))

    @property
    def exhausted(self) -> bool:
        """Every rung has fired; nothing is left to give up."""
        return self._next_rung >= len(self._rungs)

    def maybe_step(self) -> bool:
        """Sample RSS (throttled); walk one rung on pressure.

        Returns True when a rung fired — callers can log or re-check.
        Never raises: a failing action is recorded as applied (the
        ladder must keep descending under pressure, not wedge on one
        broken rung).
        """
        self._tick += 1
        if self._tick % self.check_interval:
            return False
        self.samples += 1
        if self._sampler() <= self.budget_bytes:
            return False
        self.pressure_events += 1
        if self.exhausted:
            return False
        name, action = self._rungs[self._next_rung]
        self._next_rung += 1
        self.rungs_applied += 1
        self._rung_counts[name] = self._rung_counts.get(name, 0) + 1
        try:
            action()
        except Exception:  # pragma: no cover - defensive
            pass
        return True

    @property
    def statistics(self) -> dict:
        """Flat counters (exactly summable across workers)."""
        stats = {
            "gov_samples": self.samples,
            "gov_pressure_events": self.pressure_events,
            "gov_rungs_applied": self.rungs_applied,
        }
        for name, count in self._rung_counts.items():
            stats[f"gov_rung_{name}"] = count
        return stats


def build_exploration_governor(
    budget_mb: int,
    executor,
    solver,
    capture_state: dict,
    sampler: Optional[Callable[[], int]] = None,
) -> MemoryGovernor:
    """Wire the standard three-rung ladder for one exploration driver.

    ``capture_state`` is the driver's mutable ``{"snapshots": bool}``
    cell — rung 3 flips it off, and the driver re-reads it every run,
    so disabling capture takes effect immediately without threading a
    callback through the run loop.  ``solver``/``executor`` hooks are
    duck-typed: a missing surface (no cache, no snapshot pool) makes
    that part of the rung a no-op, so the ladder works for every
    engine.
    """
    governor = MemoryGovernor(budget_mb * 1024 * 1024, sampler=sampler)
    pool = getattr(executor, "snapshot_pool", None)

    def shrink_snapshot_budget() -> None:
        if pool is not None:
            pool.set_budget(max(1024 * 1024, pool.max_bytes // 2))

    def tighten_caches() -> None:
        cache = getattr(solver, "cache", None)
        if cache is not None and hasattr(cache, "tighten"):
            cache.tighten()
        tighten = getattr(executor, "tighten_caches", None)
        if tighten is not None:
            tighten()

    def disable_capture() -> None:
        capture_state["snapshots"] = False
        if pool is not None:
            pool.clear()

    governor.add_rung("snapshot_budget", shrink_snapshot_budget)
    governor.add_rung("cache_capacity", tighten_caches)
    governor.add_rung("snapshots_off", disable_capture)
    return governor
