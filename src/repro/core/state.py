"""Symbolic machine state: branch traces, symbolic memory, input maps.

The state kept by one concolic run consists of

* the generic hart/register file instantiated at :class:`SymValue`,
* concrete byte memory plus a sparse per-byte *shadow* of 8-bit SMT
  terms (:class:`repro.arch.memory.ShadowMemory`),
* the **path trace**: the sequence of symbolic branch decisions
  (flippable) and concretization assumptions (not flippable) collected
  during execution — the raw material of the offline executor's
  branch-flipping queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..smt import terms as T

__all__ = [
    "BranchRecord",
    "PathTrace",
    "SymbolicInput",
    "InputAssignment",
    "ExploredPrefixTrie",
]


@dataclass(frozen=True)
class BranchRecord:
    """One recorded path-condition element.

    ``condition`` is the SMT condition *as taken*: for a branch that
    evaluated to False the negated condition is stored, so the path
    condition is always the conjunction of ``condition`` fields.
    ``flippable`` distinguishes real branch decisions from
    concretization assumptions pinned by the memory model.
    """

    condition: T.Term
    pc: int
    taken: bool
    flippable: bool = True

    def negated(self) -> T.Term:
        return T.bnot(self.condition)


class PathTrace:
    """Ordered collection of branch records for one execution."""

    def __init__(self) -> None:
        self.records: list[BranchRecord] = []

    def add_branch(self, condition: T.Term, pc: int, taken: bool) -> None:
        """Record a symbolic branch outcome (condition-as-taken form)."""
        as_taken = condition if taken else T.bnot(condition)
        self.records.append(BranchRecord(as_taken, pc, taken, flippable=True))

    def add_assumption(self, condition: T.Term, pc: int) -> None:
        """Record a non-flippable constraint (e.g. address pinning)."""
        if condition.is_const and condition.payload:
            return  # trivially true assumptions carry no information
        self.records.append(BranchRecord(condition, pc, True, flippable=False))

    def conditions(self) -> list[T.Term]:
        return [record.condition for record in self.records]

    def prefix_conditions(self, index: int) -> list[T.Term]:
        """Conditions of records [0, index)."""
        return [record.condition for record in self.records[:index]]

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def signature(self) -> tuple:
        """Hashable identity of the path (used for duplicate detection)."""
        return tuple(
            (record.pc, record.taken) for record in self.records if record.flippable
        )


class _TrieNode:
    __slots__ = ("children", "attempted")

    def __init__(self) -> None:
        self.children: dict[T.Term, _TrieNode] = {}
        self.attempted = False


class ExploredPrefixTrie:
    """Prefix-sharing set of already-issued branch-flip queries.

    Each query the explorer poses is a path-condition prefix plus one
    negated branch condition.  Keys are the sequences of (interned)
    condition terms, so the trie shares storage between the heavily
    overlapping prefixes of sibling paths.  Marking a flip that was
    already attempted returns False, letting the exploration driver skip
    the solver query *and* the duplicate frontier entry it would create
    — the situation arises when concolic runs diverge from their
    predicted path and re-execute an already-enumerated prefix.
    """

    def __init__(self) -> None:
        self._root = _TrieNode()
        self._flips = 0

    def __len__(self) -> int:
        """Number of distinct flip queries marked so far."""
        return self._flips

    def root(self) -> _TrieNode:
        return self._root

    def step(self, node: _TrieNode, condition: T.Term) -> _TrieNode:
        """Advance one condition deeper, creating the child on demand."""
        child = node.children.get(condition)
        if child is None:
            child = _TrieNode()
            node.children[condition] = child
        return child

    def try_mark(self, node: _TrieNode, negated: T.Term) -> bool:
        """Mark the flip ``negated`` under ``node``; False if seen before."""
        child = self.step(node, negated)
        if child.attempted:
            return False
        child.attempted = True
        self._flips += 1
        return True

    def insert(self, conditions: list[T.Term]) -> bool:
        """Mark a full query (prefix + negated flip); False if present."""
        if not conditions:
            return False
        node = self._root
        for condition in conditions[:-1]:
            node = self.step(node, condition)
        return self.try_mark(node, conditions[-1])

    def contains(self, conditions: list[T.Term]) -> bool:
        node = self._root
        for condition in conditions:
            node = node.children.get(condition)
            if node is None:
                return False
        return node.attempted


@dataclass
class SymbolicInput:
    """One byte of symbolic program input.

    Created when the program calls ``make_symbolic`` (or when the
    harness pre-marks a region): address, stable SMT variable, and the
    default concrete byte (from the initial memory image).
    """

    address: int
    variable: T.Term
    default: int


class InputAssignment:
    """Concrete values for the symbolic input bytes of one run."""

    def __init__(self, values: Optional[dict[T.Term, int]] = None):
        self.values: dict[T.Term, int] = dict(values or {})

    def value_for(self, sym_input: SymbolicInput) -> int:
        return self.values.get(sym_input.variable, sym_input.default) & 0xFF

    def derive(self, model, variables) -> "InputAssignment":
        """New assignment taking ``variables``' values from a model.

        Variables the solver never saw keep their current value — the
        model knows nothing about them, and resetting them to zero
        would needlessly perturb unexplored program behaviour.
        """
        values = dict(self.values)
        for variable in variables:
            if variable in model:
                values[variable] = model[variable]
        return InputAssignment(values)

    def as_bytes(self, inputs: list[SymbolicInput]) -> bytes:
        """Render the assignment over an input region (for reports)."""
        return bytes(self.value_for(i) for i in inputs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{var.payload}={val:#04x}" for var, val in sorted(
                self.values.items(), key=lambda item: str(item[0].payload)
            )
        )
        return f"InputAssignment({parts})"
