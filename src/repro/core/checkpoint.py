"""Crash-safe exploration checkpoints: an atomic-rename JSON journal.

The exploration drivers (serial and pooled) periodically serialize
their *complete* recoverable state — every recorded path, the pending
frontier, the set of already-issued flip-query digests, and the exact
query-attribution counters — to ``checkpoint.json`` inside a campaign
directory.  Writes go through a temp file + ``os.replace``, so a crash
at any instant leaves either the previous checkpoint or the new one,
never a torn file.

The journal carries its own **integrity digest**: the state object is
canonically serialized and a ``blake2b`` digest of those bytes is
stored alongside it.  ``load()`` recomputes the digest before trusting
anything — a truncated, bit-flipped or hand-edited journal fails with
a clear error instead of silently resuming a corrupted campaign (the
same never-trust-stored-answers contract the query cache enforces with
its per-entry digests).

``--resume <dir>`` reloads the journal and continues the campaign:
recorded paths are *not* re-executed (they are restored verbatim, with
their counters), pending frontier items are re-pushed, and the
persisted flip digests suppress re-deriving children some pre-crash
run already enqueued — so the resumed campaign completes exactly the
uninterrupted run's path set without duplicates.  This only works
because :func:`repro.core.scheduler.term_digest` is restart-stable
(independent of the interpreter's randomized hash seed).

Two deliberate non-goals keep the journal small and sound:

* **Snapshot handles are dropped** on save — they are process-local
  pool indices; restored items re-execute from the entry point, the
  same fallback the PR 5 eviction contract already guarantees.
* The **write point** is after a path is recorded *and* its children
  pushed, so the journal never names a path whose children could be
  lost: execution between the last checkpoint and a crash is repeated
  (at-least-once), but every *persisted* path is final (exactly-once).
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Optional

from .scheduler import WorkItem, deserialize_assignment, serialize_assignment

__all__ = ["CheckpointManager", "CheckpointState", "CHECKPOINT_FILENAME"]

CHECKPOINT_FILENAME = "checkpoint.json"

_FORMAT_VERSION = 2


def _state_digest(state: dict) -> str:
    """Digest of the canonical serialization of the journal state.

    The state is re-serialized with sorted keys and fixed separators on
    both the write and the verify side, so the digest is independent of
    incidental formatting and survives a JSON round-trip (tuples come
    back as lists, which serialize identically).
    """
    body = json.dumps(state, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(body.encode("utf-8"), digest_size=16).hexdigest()

#: ExplorationResult counter attributes persisted verbatim.
_COUNTER_FIELDS = (
    "sat_checks",
    "unsat_checks",
    "cache_hits",
    "fast_path_answers",
    "sat_solves",
    "pruned_queries",
    "unknown_queries",
    "incomplete_paths",
    "worker_deaths",
    "hung_workers",
    "degradations",
    "total_instructions",
    "executed_instructions",
    "solver_time",
)


@dataclass
class CheckpointState:
    """One decoded journal: everything a resumed campaign starts from."""

    strategy: str
    seed: int
    complete: bool = False
    paths: list = field(default_factory=list)
    frontier: list = field(default_factory=list)
    digests: set = field(default_factory=set)
    covered: set = field(default_factory=set)
    counters: dict = field(default_factory=dict)
    solver_stats: dict = field(default_factory=dict)
    snapshot_stats: dict = field(default_factory=dict)
    superblock_stats: dict = field(default_factory=dict)
    governor_stats: dict = field(default_factory=dict)

    def restore_result(self, result) -> None:
        """Seed an ``ExplorationResult`` with the persisted campaign."""
        from .explorer import PathInfo

        for payload in self.paths:
            (
                halt,
                exit_code,
                instret,
                trace_len,
                assignment,
                stdout,
                pc,
                condition_digest,
            ) = payload
            result.paths.append(
                PathInfo(
                    index=len(result.paths),
                    halt_reason=halt,
                    exit_code=exit_code,
                    instret=instret,
                    trace_length=trace_len,
                    assignment=deserialize_assignment(assignment),
                    stdout=base64.b64decode(stdout),
                    final_pc=pc,
                    condition_digest=condition_digest,
                )
            )
        for name in _COUNTER_FIELDS:
            setattr(result, name, self.counters.get(name, 0))
        result.covered_branches |= self.covered
        result.merge_solver_stats(self.solver_stats)
        result.merge_snapshot_stats(self.snapshot_stats)
        result.merge_superblock_stats(self.superblock_stats)
        # Governor counters are restored directly (not via
        # merge_governor_stats): the ``degradations`` total already came
        # back through _COUNTER_FIELDS above, and merging would re-add
        # the persisted ``gov_rungs_applied`` on top of it.
        for key, value in self.governor_stats.items():
            result.governor_stats[key] = result.governor_stats.get(key, 0) + value

    def frontier_items(self) -> list:
        """Pending :class:`WorkItem`s (snapshot-free, per module doc)."""
        return [
            WorkItem(
                deserialize_assignment(assignment),
                bound,
                novelty=novelty,
                digest=digest,
                divergence=bound - 1 if bound else None,
            )
            for assignment, bound, novelty, digest in self.frontier
        ]


class CheckpointManager:
    """Owns one campaign directory's journal: save / load / cadence.

    ``interval`` is in *recorded paths*: ``maybe_save`` persists once
    every ``interval`` newly recorded paths (1 = after every run).  The
    strategy name and seed are stored in the journal and validated on
    load — resuming a DFS campaign as BFS would silently explore a
    different tree, so it is an error instead.
    """

    def __init__(
        self,
        directory: str,
        strategy: str,
        seed: int,
        interval: int = 1,
    ):
        self.directory = directory
        self.strategy = strategy
        self.seed = seed
        self.interval = max(1, interval)
        self._saved_paths = 0
        os.makedirs(directory, exist_ok=True)

    @property
    def path(self) -> str:
        return os.path.join(self.directory, CHECKPOINT_FILENAME)

    # ------------------------------------------------------------------
    # Load
    # ------------------------------------------------------------------

    def load(self) -> Optional[CheckpointState]:
        """Decode and integrity-check the journal (``None`` = never written).

        Raises ``ValueError`` when the journal exists but cannot be
        trusted: unreadable JSON (truncation), a missing or mismatching
        content digest (bit flips, hand edits), or an incompatible
        format version.  Resuming from a corrupt journal would silently
        lose or duplicate paths, so it is always an error.
        """
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                raw = json.load(handle)
        except FileNotFoundError:
            return None
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"checkpoint {self.path} is corrupt (unreadable JSON: {exc}) "
                f"— the journal was truncated or damaged; delete it to start "
                f"a fresh campaign"
            ) from None
        digest = raw.get("digest") if isinstance(raw, dict) else None
        state_raw = raw.get("state") if isinstance(raw, dict) else None
        if not isinstance(digest, str) or not isinstance(state_raw, dict):
            raise ValueError(
                f"checkpoint {self.path} is malformed (missing integrity "
                f"digest or state) — it was not written by this version, or "
                f"was damaged; delete it to start a fresh campaign"
            )
        if _state_digest(state_raw) != digest:
            raise ValueError(
                f"checkpoint {self.path} failed its integrity check "
                f"(content digest mismatch) — the journal is truncated or "
                f"bit-flipped; delete it to start a fresh campaign"
            )
        raw = state_raw
        if raw.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"checkpoint {self.path} has unsupported version "
                f"{raw.get('version')!r}"
            )
        if raw["strategy"] != self.strategy or raw["seed"] != self.seed:
            raise ValueError(
                f"checkpoint {self.path} was written by strategy="
                f"{raw['strategy']!r} seed={raw['seed']} — resuming with "
                f"strategy={self.strategy!r} seed={self.seed} would explore "
                f"a different tree"
            )
        state = CheckpointState(
            strategy=raw["strategy"],
            seed=raw["seed"],
            complete=raw["complete"],
            paths=[tuple(entry) for entry in raw["paths"]],
            frontier=[tuple(entry) for entry in raw["frontier"]],
            digests=set(raw["digests"]),
            covered=set(raw["covered"]),
            counters=raw["counters"],
            solver_stats=raw["solver_stats"],
            snapshot_stats=raw["snapshot_stats"],
            superblock_stats=raw["superblock_stats"],
            governor_stats=raw.get("governor_stats", {}),
        )
        self._saved_paths = len(state.paths)
        return state

    # ------------------------------------------------------------------
    # Save
    # ------------------------------------------------------------------

    def maybe_save(self, result, pending, digests, **stats_now) -> bool:
        """Persist if ``interval`` paths were recorded since the last save."""
        if result.num_paths - self._saved_paths < self.interval:
            return False
        self.save(result, pending, digests, complete=False, **stats_now)
        return True

    def save(
        self,
        result,
        pending,
        digests,
        complete: bool,
        solver_stats: Optional[dict] = None,
        snapshot_stats: Optional[dict] = None,
        superblock_stats: Optional[dict] = None,
        governor_stats: Optional[dict] = None,
    ) -> None:
        """Atomically write the journal (temp file + ``os.replace``).

        ``pending`` is every not-yet-completed item: the frontier
        snapshot plus, for the pooled driver, the in-flight items —
        anything not persisted here *and* not recorded as a path would
        be lost to a crash.  The ``*_stats`` dicts are the *current
        cumulative* flat counters (resume base + live), since the live
        solver's counters are only merged into the result at run end.
        """
        state = {
            "version": _FORMAT_VERSION,
            "strategy": self.strategy,
            "seed": self.seed,
            "complete": complete,
            "paths": [
                (
                    info.halt_reason,
                    info.exit_code,
                    info.instret,
                    info.trace_length,
                    serialize_assignment(info.assignment),
                    base64.b64encode(info.stdout).decode("ascii"),
                    info.final_pc,
                    info.condition_digest,
                )
                for info in result.paths
            ],
            "frontier": [
                (
                    serialize_assignment(item.assignment),
                    item.bound,
                    item.novelty,
                    item.digest,
                )
                for item in pending
            ],
            "digests": sorted(digests) if digests else [],
            "covered": sorted(result.covered_branches),
            "counters": {
                name: getattr(result, name) for name in _COUNTER_FIELDS
            },
            "solver_stats": solver_stats or {},
            "snapshot_stats": snapshot_stats or {},
            "superblock_stats": superblock_stats or {},
            "governor_stats": governor_stats or {},
        }
        # Digest over the canonical serialization, then the wrapper —
        # load() recomputes the digest from the parsed state, so any
        # bit flip in either part is caught.
        journal = {"digest": _state_digest(state), "state": state}
        temp_path = self.path + ".tmp"
        with open(temp_path, "w", encoding="utf-8") as handle:
            json.dump(journal, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, self.path)
        self._saved_paths = result.num_paths
