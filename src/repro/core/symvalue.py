"""Concolic values: a concrete integer paired with an optional SMT term.

BinSym implements an *offline* (concolic) executor: every value has a
concrete integer under the current input assignment, and values that
data-depend on symbolic input additionally carry an SMT shadow term.
Purely concrete values skip term construction entirely — the *concrete
fast path* that keeps shadow expressions proportional to the symbolic
dataflow instead of the full instruction stream (ablation:
``benchmarks/bench_ablation_fastpath.py``).
"""

from __future__ import annotations

from typing import Optional

from ..smt import bvops
from ..smt import terms as T

__all__ = ["SymValue", "SymDomain"]


class SymValue:
    """A width-annotated concolic value.

    Attributes:
        concrete: unsigned integer value under the current assignment.
        term: SMT term, or None when the value is input-independent.
        width: bit width.
    """

    __slots__ = ("concrete", "term", "width")

    def __init__(self, concrete: int, width: int, term: Optional[T.Term] = None):
        self.concrete = concrete & ((1 << width) - 1)
        self.width = width
        self.term = term

    @property
    def is_concrete(self) -> bool:
        return self.term is None

    def term_or_const(self) -> T.Term:
        """The shadow term, lifting pure constants on demand."""
        if self.term is None:
            return T.bv(self.concrete, self.width)
        return self.term

    def condition_term(self) -> T.Term:
        """Interpret a width-1 value as a boolean SMT condition."""
        if self.width != 1:
            raise ValueError("condition_term on a non-condition value")
        term = self.term
        if term is None:
            return T.bool_const(bool(self.concrete))
        if term.op == "bool2bv":
            return term.args[0]
        return T.eq(term, T.bv(1, 1))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = "" if self.term is None else " sym"
        return f"SymValue({self.concrete:#x}/{self.width}{tag})"


def _concrete(value: int, width: int) -> SymValue:
    return SymValue(value, width)


_INT_BINOPS = {
    "add": bvops.bv_add,
    "sub": bvops.bv_sub,
    "mul": bvops.bv_mul,
    "udiv": bvops.bv_udiv,
    "sdiv": bvops.bv_sdiv,
    "urem": bvops.bv_urem,
    "srem": bvops.bv_srem,
    "and": bvops.bv_and,
    "or": bvops.bv_or,
    "xor": bvops.bv_xor,
    "shl": bvops.bv_shl,
    "lshr": bvops.bv_lshr,
    "ashr": bvops.bv_ashr,
}

_TERM_BINOPS = {
    "add": T.add,
    "sub": T.sub,
    "mul": T.mul,
    "udiv": T.udiv,
    "sdiv": T.sdiv,
    "urem": T.urem,
    "srem": T.srem,
    "and": T.and_,
    "or": T.or_,
    "xor": T.xor,
    "shl": T.shl,
    "lshr": T.lshr,
    "ashr": T.ashr,
}

_INT_CMPOPS = {
    "eq": lambda a, b, w: a == b,
    "ne": lambda a, b, w: a != b,
    "ult": bvops.bv_ult,
    "ule": bvops.bv_ule,
    "ugt": lambda a, b, w: a > b,
    "uge": lambda a, b, w: a >= b,
    "slt": bvops.bv_slt,
    "sle": bvops.bv_sle,
    "sgt": lambda a, b, w: bvops.bv_slt(b, a, w),
    "sge": lambda a, b, w: bvops.bv_sle(b, a, w),
}

_TERM_CMPOPS = {
    "eq": T.eq,
    "ne": T.ne,
    "ult": T.ult,
    "ule": T.ule,
    "ugt": T.ugt,
    "uge": T.uge,
    "slt": T.slt,
    "sle": T.sle,
    "sgt": T.sgt,
    "sge": T.sge,
}

_INT_UNOPS = {"not": bvops.bv_not, "neg": bvops.bv_neg}
_TERM_UNOPS = {"not": T.not_, "neg": T.neg}

# Single-lookup dispatch: op name -> (concrete fn, term builder).  One
# dict probe per evaluated operation instead of two, and no per-call
# if/elif chains (PR 3 hot-loop micro-opt; numbers in the PR notes).
_BINOP_PAIRS = {op: (_INT_BINOPS[op], _TERM_BINOPS[op]) for op in _INT_BINOPS}
_CMPOP_PAIRS = {op: (_INT_CMPOPS[op], _TERM_CMPOPS[op]) for op in _INT_CMPOPS}
_UNOP_PAIRS = {op: (_INT_UNOPS[op], _TERM_UNOPS[op]) for op in _INT_UNOPS}


class SymDomain:
    """Expression evaluation over :class:`SymValue`.

    Concrete computation mirrors :mod:`repro.smt.bvops`; shadow terms are
    built with the simplifying constructors of :mod:`repro.smt.terms`.
    ``track_terms=False`` turns the domain into a plain concrete domain
    (used by the fast-path ablation to measure the cost of always
    building terms: pass ``force_terms=True`` instead to disable the
    fast path).

    The domain is stateless apart from the ``force_terms`` flag, which
    is what lets staged plans compiled against one instance be shared by
    every behaviourally identical instance (see
    :meth:`repro.spec.isa.ISA.compiled_plan`).
    """

    def __init__(self, force_terms: bool = False):
        self.force_terms = force_terms
        # Constants fold at plan-compile time only when they carry no
        # interned term (terms must not outlive reset_interner()).
        self.supports_const_folding = not force_terms

    # -- leaves ---------------------------------------------------------

    def const(self, value: int, width: int) -> SymValue:
        if self.force_terms:
            return SymValue(value, width, T.bv(value, width))
        return SymValue(value, width)

    def from_leaf(self, value, width: int) -> SymValue:
        if isinstance(value, SymValue):
            return value
        return self.const(int(value), width)

    # -- operations ------------------------------------------------------

    def _needs_term(self, *operands: SymValue) -> bool:
        return self.force_terms or any(op.term is not None for op in operands)

    def binop(self, op: str, lhs: SymValue, rhs: SymValue, width: int) -> SymValue:
        int_fn, term_fn = _BINOP_PAIRS[op]
        concrete = int_fn(lhs.concrete, rhs.concrete, width)
        if lhs.term is None and rhs.term is None and not self.force_terms:
            return SymValue(concrete, width)
        term = term_fn(lhs.term_or_const(), rhs.term_or_const())
        return SymValue(concrete, width, term)

    def cmpop(self, op: str, lhs: SymValue, rhs: SymValue, width: int) -> SymValue:
        int_fn, term_fn = _CMPOP_PAIRS[op]
        concrete = 1 if int_fn(lhs.concrete, rhs.concrete, width) else 0
        if lhs.term is None and rhs.term is None and not self.force_terms:
            return SymValue(concrete, 1)
        cond = term_fn(lhs.term_or_const(), rhs.term_or_const())
        return SymValue(concrete, 1, T.bool_to_bv(cond))

    def unop(self, op: str, arg: SymValue, width: int) -> SymValue:
        try:
            int_fn, term_fn = _UNOP_PAIRS[op]
        except KeyError:
            raise ValueError(f"unknown unary op {op}") from None
        concrete = int_fn(arg.concrete, width)
        if arg.term is None and not self.force_terms:
            return SymValue(concrete, width)
        return SymValue(concrete, width, term_fn(arg.term_or_const()))

    def ext(self, kind: str, arg: SymValue, amount: int, from_width: int) -> SymValue:
        if kind == "zext":
            concrete = arg.concrete
            builder = T.zext
        else:
            concrete = bvops.bv_sext(arg.concrete, from_width, amount)
            builder = T.sext
        width = from_width + amount
        if arg.term is None and not self.force_terms:
            return SymValue(concrete, width)
        return SymValue(concrete, width, builder(arg.term_or_const(), amount))

    # -- staged-compilation hooks (see repro.spec.staged) ----------------

    def specialize_binop(self, op: str, width: int):
        """A pre-dispatched binop closure for compiled plans."""
        int_fn, term_fn = _BINOP_PAIRS[op]
        force = self.force_terms

        def run(lhs: SymValue, rhs: SymValue) -> SymValue:
            concrete = int_fn(lhs.concrete, rhs.concrete, width)
            if lhs.term is None and rhs.term is None and not force:
                return SymValue(concrete, width)
            term = term_fn(lhs.term_or_const(), rhs.term_or_const())
            return SymValue(concrete, width, term)

        return run

    def specialize_cmpop(self, op: str, width: int):
        int_fn, term_fn = _CMPOP_PAIRS[op]
        force = self.force_terms

        def run(lhs: SymValue, rhs: SymValue) -> SymValue:
            concrete = 1 if int_fn(lhs.concrete, rhs.concrete, width) else 0
            if lhs.term is None and rhs.term is None and not force:
                return SymValue(concrete, 1)
            cond = term_fn(lhs.term_or_const(), rhs.term_or_const())
            return SymValue(concrete, 1, T.bool_to_bv(cond))

        return run

    def specialize_unop(self, op: str, width: int):
        int_fn, term_fn = _UNOP_PAIRS[op]
        force = self.force_terms

        def run(arg: SymValue) -> SymValue:
            concrete = int_fn(arg.concrete, width)
            if arg.term is None and not force:
                return SymValue(concrete, width)
            return SymValue(concrete, width, term_fn(arg.term_or_const()))

        return run

    def extract(self, arg: SymValue, high: int, low: int) -> SymValue:
        concrete = bvops.bv_extract(arg.concrete, high, low)
        width = high - low + 1
        if not self._needs_term(arg):
            return SymValue(concrete, width)
        return SymValue(concrete, width, T.extract(arg.term_or_const(), high, low))

    def ite(
        self, cond: SymValue, then_value: SymValue, else_value: SymValue, width: int
    ) -> SymValue:
        concrete = then_value.concrete if cond.concrete else else_value.concrete
        if not self._needs_term(cond, then_value, else_value):
            return SymValue(concrete, width)
        term = T.ite(
            cond.condition_term(),
            then_value.term_or_const(),
            else_value.term_or_const(),
        )
        return SymValue(concrete, width, term)

    # -- helpers used by the interpreters --------------------------------

    def concat_bytes(self, parts: list[SymValue]) -> SymValue:
        """Little-endian byte concatenation into one value."""
        concrete = 0
        for i, part in enumerate(parts):
            concrete |= part.concrete << (8 * i)
        width = 8 * len(parts)
        if not self._needs_term(*parts):
            return SymValue(concrete, width)
        term = parts[0].term_or_const()
        for part in parts[1:]:
            term = T.concat(part.term_or_const(), term)
        return SymValue(concrete, width, term)
