"""The BinSym concolic executor: one run = one explored path.

Wraps :class:`SymbolicInterpreter` behind the engine-neutral executor
interface the explorer drives (the baseline engines implement the same
interface over their IRs).  Besides program-initiated symbolic input
(the ``make_symbolic`` ecall), the harness can pre-mark memory regions
and registers as symbolic — the Fig. 5 experiment feeds ``parse_word``'s
argument register this way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..loader.image import Image
from ..smt import terms as T
from ..spec.isa import ISA
from .concretize import ConcretizationPolicy
from .interpreter import SymbolicInterpreter
from .state import InputAssignment, PathTrace

__all__ = ["RunResult", "BinSymExecutor"]


@dataclass
class RunResult:
    """Everything the explorer needs to know about one concolic run."""

    trace: PathTrace
    halt_reason: Optional[str]
    exit_code: Optional[int]
    instret: int
    assignment: InputAssignment
    stdout: bytes
    final_pc: int = 0


class BinSymExecutor:
    """Engine adapter: repeatedly executes the SUT under new inputs."""

    name = "binsym"

    def __init__(
        self,
        isa: ISA,
        image: Image,
        symbolic_memory: Iterable[tuple[int, int]] = (),
        symbolic_registers: Iterable[int] = (),
        concretization: ConcretizationPolicy = ConcretizationPolicy.PIN,
        force_terms: bool = False,
        max_steps: int = 1_000_000,
        staging: bool = True,
    ):
        self.interpreter = SymbolicInterpreter(
            isa,
            image,
            concretization=concretization,
            force_terms=force_terms,
            staging=staging,
        )
        self.symbolic_memory = tuple(symbolic_memory)
        self.symbolic_registers = tuple(symbolic_registers)
        self.max_steps = max_steps
        self._register_vars: dict[int, T.Term] = {
            index: T.bv_var(f"reg_{index}", 32) for index in self.symbolic_registers
        }

    def set_staging(self, staging: bool) -> None:
        """Toggle staged semantics execution (the --no-staging ablation)."""
        self.interpreter.set_staging(staging)

    def execute(self, assignment: InputAssignment) -> RunResult:
        """Run the SUT once under ``assignment``; collect the trace."""
        interp = self.interpreter
        interp.reset(assignment)
        for base, length in self.symbolic_memory:
            interp.make_symbolic(base, length)
        for index, variable in self._register_vars.items():
            concrete = assignment.values.get(variable, 0)
            from .symvalue import SymValue

            interp.hart.regs.write(index, SymValue(concrete, 32, variable))
        hart = interp.run(self.max_steps)
        return RunResult(
            trace=interp.trace,
            halt_reason=hart.halt_reason,
            exit_code=hart.exit_code,
            instret=hart.instret,
            assignment=assignment,
            stdout=bytes(interp.stdout),
            final_pc=hart.pc,
        )

    def input_variables(self) -> list[T.Term]:
        variables = self.interpreter.input_variables()
        variables.extend(self._register_vars.values())
        return variables
