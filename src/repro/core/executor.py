"""The BinSym concolic executor: one run = one explored path.

Wraps :class:`SymbolicInterpreter` behind the engine-neutral executor
interface the explorer drives (the baseline engines implement the same
interface over their IRs).  Besides program-initiated symbolic input
(the ``make_symbolic`` ecall), the harness can pre-mark memory regions
and registers as symbolic — the Fig. 5 experiment feeds ``parse_word``'s
argument register this way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

from ..loader.image import Image
from ..smt import terms as T
from ..spec.isa import ISA
from .concretize import ConcretizationPolicy
from .interpreter import SymbolicInterpreter
from .snapshots import SnapshotPool
from .state import InputAssignment, PathTrace

__all__ = ["RunResult", "BinSymExecutor"]


@dataclass
class RunResult:
    """Everything the explorer needs to know about one concolic run.

    ``snapshots`` maps flippable branch-record indices to snapshot-pool
    handles captured during the run (empty when capture was off), and
    ``resumed_instret`` is the prefix length this run did *not* execute
    because it resumed from a snapshot — ``instret`` always reports the
    full architectural path length, so exploration totals are identical
    with snapshots on and off.
    """

    trace: PathTrace
    halt_reason: Optional[str]
    exit_code: Optional[int]
    instret: int
    assignment: InputAssignment
    stdout: bytes
    final_pc: int = 0
    snapshots: dict[int, int] = field(default_factory=dict)
    resumed_instret: int = 0


class BinSymExecutor:
    """Engine adapter: repeatedly executes the SUT under new inputs.

    Supports snapshot-resumed runs (``supports_snapshots``): the
    exploration drivers pass ``capture_from`` so the interpreter
    registers a :class:`~repro.core.snapshots.StateSnapshot` at every
    flippable branch beyond the re-flip bound, and ``resume`` to start
    a child run at its divergence point instead of ``pc = entry``.  The
    pool is a cache — an evicted (or cross-worker) handle transparently
    falls back to full re-execution, which discovers the same path.
    """

    name = "binsym"
    supports_snapshots = True

    def __init__(
        self,
        isa: ISA,
        image: Image,
        symbolic_memory: Iterable[tuple[int, int]] = (),
        symbolic_registers: Iterable[int] = (),
        concretization: ConcretizationPolicy = ConcretizationPolicy.PIN,
        force_terms: bool = False,
        max_steps: int = 1_000_000,
        staging: bool = True,
        superblocks: bool = True,
        snapshot_pool: Optional[SnapshotPool] = None,
    ):
        self.interpreter = SymbolicInterpreter(
            isa,
            image,
            concretization=concretization,
            force_terms=force_terms,
            staging=staging,
            superblocks=superblocks,
        )
        self.symbolic_memory = tuple(symbolic_memory)
        self.symbolic_registers = tuple(symbolic_registers)
        self.max_steps = max_steps
        self._register_vars: dict[int, T.Term] = {
            index: T.bv_var(f"reg_{index}", 32) for index in self.symbolic_registers
        }
        self.snapshot_pool = (
            snapshot_pool if snapshot_pool is not None else SnapshotPool()
        )
        self.resumed_runs = 0
        self.saved_instructions = 0
        self.fallback_runs = 0

    def set_staging(self, staging: bool) -> None:
        """Toggle staged semantics execution (the --no-staging ablation)."""
        self.interpreter.set_staging(staging)

    def set_superblocks(self, superblocks: bool) -> None:
        """Toggle superblock execution (the --no-superblocks ablation)."""
        self.interpreter.set_superblocks(superblocks)

    def note_hot_pcs(self, pcs) -> None:
        """Driver feedback: branch PCs whose cumulative execution count
        crossed the superblock hotness threshold."""
        self.interpreter.note_hot_branches(pcs)

    @property
    def superblocks_enabled(self) -> bool:
        return self.interpreter._sb_enabled

    @property
    def superblock_statistics(self) -> Mapping[str, int]:
        """Flat superblock counters (summable across workers)."""
        interp = self.interpreter
        return {
            "sb_hits": interp.sb_hits,
            "sb_block_instructions": interp.sb_instructions,
            "sb_blocks_built": interp.sb_blocks_built,
            "sb_block_cache_hits": interp.sb_block_cache_hits,
            "sb_deopts": interp.sb_deopts,
            "sb_invalidations": interp.sb_invalidations,
            "sb_unstitchable": interp.sb_unstitchable,
        }

    def _assignment_env(self, assignment: InputAssignment) -> dict[T.Term, int]:
        """Total input-variable environment for snapshot rebasing."""
        env = {
            sym_input.variable: assignment.value_for(sym_input)
            for sym_input in self.interpreter.inputs.values()
        }
        for variable in self._register_vars.values():
            env[variable] = assignment.values.get(variable, 0)
        return env

    def execute(
        self,
        assignment: InputAssignment,
        capture_from: Optional[int] = None,
        resume: Optional[int] = None,
    ) -> RunResult:
        """Run the SUT once under ``assignment``; collect the trace.

        ``capture_from`` arms snapshot capture at flippable branch
        records with index >= the bound (None leaves capture off);
        ``resume`` names a pool handle to resume from, silently falling
        back to a full run when the snapshot was evicted or predates
        later-discovered symbolic inputs.
        """
        interp = self.interpreter
        snapshot = None
        if resume is not None:
            snapshot = self.snapshot_pool.get(resume)
            if snapshot is not None and snapshot.inputs_count != len(interp.inputs):
                # Inputs discovered after capture: permanently stale
                # (inputs only accumulate), so evict it and reclassify
                # the pool hit as a miss.
                self.snapshot_pool.discard(resume)
                snapshot = None
        resumed_instret = 0
        if snapshot is not None:
            interp.resume(snapshot, assignment, self._assignment_env(assignment))
            self.resumed_runs += 1
            self.saved_instructions += snapshot.instret
            resumed_instret = snapshot.instret
        else:
            if resume is not None:
                self.fallback_runs += 1
            interp.reset(assignment)
            for base, length in self.symbolic_memory:
                interp.make_symbolic(base, length)
            for index, variable in self._register_vars.items():
                concrete = assignment.values.get(variable, 0)
                from .symvalue import SymValue

                interp.hart.regs.write(index, SymValue(concrete, 32, variable))
        interp.configure_capture(
            self.snapshot_pool if capture_from is not None else None,
            capture_from if capture_from is not None else 0,
        )
        hart = interp.run(self.max_steps)
        return RunResult(
            trace=interp.trace,
            halt_reason=hart.halt_reason,
            exit_code=hart.exit_code,
            instret=hart.instret,
            assignment=assignment,
            stdout=bytes(interp.stdout),
            final_pc=hart.pc,
            snapshots=dict(interp.captured),
            resumed_instret=resumed_instret,
        )

    def execute_from(
        self,
        snapshot: Optional[int],
        assignment: InputAssignment,
        capture_from: Optional[int] = None,
    ) -> RunResult:
        """Resume a run from a snapshot handle (re-executes on miss)."""
        return self.execute(assignment, capture_from=capture_from, resume=snapshot)

    @property
    def snapshot_statistics(self) -> Mapping[str, int]:
        """Flat snapshot counters (summable across workers)."""
        stats = dict(self.snapshot_pool.statistics)
        stats["snap_resumed_runs"] = self.resumed_runs
        stats["snap_saved_instructions"] = self.saved_instructions
        stats["snap_fallback_runs"] = self.fallback_runs
        return stats

    def tighten_caches(self, factor: int = 2) -> None:
        """Shrink the staged-plan and superblock memo caches (governor rung).

        All of these are pure per-word memos: trimming costs a re-record
        or re-stitch on the next miss, never a different answer.  The
        staged caches get their (instance-shadowed) capacity halved and
        are trimmed FIFO down to it; the superblock engine's step-info
        and block caches are trimmed to half their current population
        (their capacity caps are module constants, so the trim itself is
        the pressure relief).
        """
        isa = self.interpreter.isa
        isa.STAGED_CACHE_CAPACITY = max(256, isa.STAGED_CACHE_CAPACITY // factor)
        for cache in (isa._plan_cache, isa._compiled_cache):
            while len(cache) > isa.STAGED_CACHE_CAPACITY:
                del cache[next(iter(cache))]
        engine = isa._superblock_engine
        if engine is not None:
            for cache in (engine._step_info, engine._blocks):
                keep = len(cache) // factor
                while len(cache) > keep:
                    del cache[next(iter(cache))]

    def purge_snapshots(self) -> None:
        """Drop every pooled snapshot (fault injection: eviction storm).

        Sound by the eviction contract: later resume attempts miss and
        fall back to full re-execution, discovering the same path.
        """
        self.snapshot_pool.clear()

    def input_variables(self) -> list[T.Term]:
        variables = self.interpreter.input_variables()
        variables.extend(self._register_vars.values())
        return variables
