"""Per-path certificates: replayable evidence for every reported path.

An exploration result is a *claim*: "these inputs drive the SUT down a
path with this halt reason, exit code, output and path condition".  The
claim is cheap to state and — because the exploring run may have gone
through staged plans, superblocks and snapshot resumption — worth
checking against something simpler.  A :class:`PathCertificate` pins
down everything observable about one path:

* the concrete **inputs** (the solver model that selected the path),
  serialized by variable name so a certificate survives process and
  checkpoint boundaries;
* the **observable outcome**: halt reason, exit code, architectural
  instruction count, final PC, and a digest of the captured stdout;
* the **path-condition digest chain**: the order-sensitive fold of
  :func:`repro.core.scheduler.query_digest` over the trace's branch
  conditions and assumptions, which identifies the logical path, not
  just its observable effects.

Verification is replay under the *reference evaluator*: staging and
superblocks off, no snapshot resumption — the plain recursive
interpretation of the formal ISA semantics.  Every field must match
exactly; the condition digest in particular certifies that the staged
plan compiler, the superblock stitcher and the snapshot layer produced
byte-for-byte the same path conditions the reference interpretation
derives from scratch.  A mismatch is counted and reported, never
silently dropped (same contract as the solver-side certification in
:mod:`repro.smt.solver`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

from .scheduler import deserialize_assignment, query_digest, serialize_assignment

__all__ = [
    "PathCertificate",
    "certificate_for",
    "certificate_to_state",
    "certificate_from_state",
    "replay_mismatches",
    "verify_result",
    "reference_mode",
    "stdout_digest",
]


def stdout_digest(data: bytes) -> str:
    """Short stable digest of a path's captured output."""
    return hashlib.blake2b(data, digest_size=16).hexdigest()


@dataclass(frozen=True)
class PathCertificate:
    """Independently checkable claim about one explored path.

    ``inputs`` is the name-keyed serialized assignment (see
    :func:`repro.core.scheduler.serialize_assignment`), so the
    certificate is self-contained: any process holding the same SUT
    image can replay it.  ``condition_digest`` is ``None`` when the
    exploring driver did not record condition chains (certify mode
    off, or a path restored from a pre-certify checkpoint) — replay
    then checks the observable fields only.
    """

    index: int
    inputs: tuple
    halt_reason: Optional[str]
    exit_code: Optional[int]
    instret: int
    trace_length: int
    stdout_digest: str
    final_pc: int
    condition_digest: Optional[int] = None


def certificate_for(path) -> PathCertificate:
    """Build the certificate a recorded :class:`PathInfo` claims."""
    return PathCertificate(
        index=path.index,
        inputs=serialize_assignment(path.assignment),
        halt_reason=path.halt_reason,
        exit_code=path.exit_code,
        instret=path.instret,
        trace_length=path.trace_length,
        stdout_digest=stdout_digest(path.stdout),
        final_pc=path.final_pc,
        condition_digest=path.condition_digest,
    )


def certificate_to_state(cert: PathCertificate) -> dict:
    """JSON-able state block for the persistent artifact store.

    Pure data translation — ``inputs`` tuples become lists, everything
    else is already a scalar — so a certificate written by one process
    reads back bit-identically in another.
    """
    return {
        "index": cert.index,
        "inputs": [list(binding) for binding in cert.inputs],
        "halt_reason": cert.halt_reason,
        "exit_code": cert.exit_code,
        "instret": cert.instret,
        "trace_length": cert.trace_length,
        "stdout_digest": cert.stdout_digest,
        "final_pc": cert.final_pc,
        "condition_digest": cert.condition_digest,
    }


def certificate_from_state(state: dict) -> PathCertificate:
    """Rebuild a certificate from its store state; ``ValueError`` on rot."""
    if not isinstance(state, dict):
        raise ValueError("certificate state is not an object")
    try:
        inputs = state["inputs"]
        if not isinstance(inputs, list):
            raise ValueError("malformed certificate inputs")
        bindings = []
        for binding in inputs:
            name, width, value = binding
            if not (
                isinstance(name, str)
                and isinstance(width, int)
                and isinstance(value, int)
            ):
                raise ValueError(f"malformed input binding {binding!r}")
            bindings.append((name, width, value))
        cert = PathCertificate(
            index=state["index"],
            inputs=tuple(bindings),
            halt_reason=state["halt_reason"],
            exit_code=state["exit_code"],
            instret=state["instret"],
            trace_length=state["trace_length"],
            stdout_digest=state["stdout_digest"],
            final_pc=state["final_pc"],
            condition_digest=state.get("condition_digest"),
        )
    except (KeyError, TypeError) as exc:
        raise ValueError(f"malformed certificate state: {exc}") from None
    if not isinstance(cert.index, int) or not isinstance(cert.stdout_digest, str):
        raise ValueError("malformed certificate scalar fields")
    if not isinstance(cert.instret, int) or not isinstance(cert.final_pc, int):
        raise ValueError("malformed certificate scalar fields")
    return cert


def replay_mismatches(cert: PathCertificate, executor) -> list[str]:
    """Replay ``cert``'s inputs on ``executor``; list every mismatch.

    An empty list means the certificate checked.  The caller is
    responsible for putting the executor into reference configuration
    first (see :class:`reference_mode`) — this function only replays
    and compares.
    """
    run = executor.execute(deserialize_assignment(cert.inputs))
    checks = [
        ("halt_reason", cert.halt_reason, run.halt_reason),
        ("exit_code", cert.exit_code, run.exit_code),
        ("instret", cert.instret, run.instret),
        ("trace_length", cert.trace_length, len(run.trace)),
        ("stdout_digest", cert.stdout_digest, stdout_digest(run.stdout)),
        ("final_pc", cert.final_pc, run.final_pc),
    ]
    if cert.condition_digest is not None:
        checks.append(
            (
                "condition_digest",
                cert.condition_digest,
                query_digest(run.trace.conditions()),
            )
        )
    return [
        f"path {cert.index}: {name} mismatch (claimed {claimed!r}, replay {got!r})"
        for name, claimed, got in checks
        if claimed != got
    ]


class reference_mode:
    """Temporarily drop an executor to the reference evaluator.

    Staging and superblocks go off for the duration (engines without
    those knobs are left untouched); the previous configuration is
    restored on exit, so a certify pass does not perturb whatever runs
    the caller does next.  Replay always goes through ``execute()``
    from the entry point, so snapshot resumption is out of the picture
    by construction.
    """

    def __init__(self, executor):
        self.executor = executor
        self._staging: Optional[bool] = None
        self._superblocks: Optional[bool] = None

    def __enter__(self):
        executor = self.executor
        interpreter = getattr(executor, "interpreter", None)
        if hasattr(executor, "set_staging"):
            self._staging = getattr(interpreter, "staging", None)
            executor.set_staging(False)
        if hasattr(executor, "set_superblocks"):
            self._superblocks = getattr(executor, "superblocks_enabled", None)
            executor.set_superblocks(False)
        return executor

    def __exit__(self, *exc_info):
        if self._staging is not None:
            self.executor.set_staging(self._staging)
        if self._superblocks is not None:
            self.executor.set_superblocks(self._superblocks)
        return False


def verify_result(result, executor) -> list[str]:
    """Replay-verify every recorded path of an exploration result.

    Builds one certificate per path, replays each under the reference
    evaluator, and folds the outcome into the result's accounting:
    ``certified_paths`` / ``certificate_failures`` counters, the
    ``certificates`` list, and ``certificate_errors`` carrying one
    message per mismatching field.  Returns the error list.
    """
    certificates = [certificate_for(path) for path in result.paths]
    failures: list[str] = []
    with reference_mode(executor):
        for cert in certificates:
            problems = replay_mismatches(cert, executor)
            if problems:
                failures.extend(problems)
                result.certificate_failures += 1
            else:
                result.certified_paths += 1
    result.certificates = certificates
    result.certificate_errors.extend(failures)
    return failures
