"""Work-queue scheduling for path exploration.

This module is the seam between *what* gets explored and *how*: the
exploration drivers (serial :class:`repro.core.explorer.Explorer`,
multi-process :class:`repro.core.parallel.ProcessPoolExplorer`) both
operate on

* :class:`WorkItem` — one pending concolic run (input assignment plus
  the branch index below which ancestors already enumerated flips),
* :class:`Frontier` — the work queue, parameterized by a pluggable
  :mod:`repro.core.strategy` policy (DFS, BFS, random, coverage-guided)
  with push/pop/peak-size accounting,
* :func:`expand_run` — the branch-flip step of the paper's offline
  executor (Sect. III-B): pose one solver query per flippable branch
  beyond the bound, collect satisfiable flips as new work items,
* :class:`RunStats` — exact per-run solver accounting, merged into the
  exploration result identically whether the run happened inline or on
  a worker process.

Assignments cross process boundaries by *name*: interned terms hash by
identity, so a pickled term would no longer match its interner entry on
the other side.  :func:`serialize_assignment` and
:func:`deserialize_assignment` translate between term-keyed assignments
and plain (name, width, value) tuples.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Optional

from ..smt import terms as T
from ..smt.solver import Result, Solver
from .state import ExploredPrefixTrie, InputAssignment
from .strategy import Strategy, make_strategy

__all__ = [
    "WorkItem",
    "Frontier",
    "RunStats",
    "expand_run",
    "query_digest",
    "serialize_assignment",
    "deserialize_assignment",
]


@dataclass
class WorkItem:
    """One pending concolic run.

    ``bound`` is the classic concolic re-flip barrier: branch indices
    below it were already enumerated by ancestors and must not be
    flipped again.  ``novelty`` scores how much new branch coverage the
    *parent* run contributed; the coverage-guided strategy prioritizes
    on it and the others ignore it.  ``digest`` identifies the flip
    query that produced this item (see :func:`query_digest`); the
    parallel driver uses it to deduplicate children across workers.
    """

    assignment: InputAssignment
    bound: int
    novelty: int = 0
    digest: Optional[int] = None
    #: Opaque snapshot handle the run that spawned this item captured at
    #: the divergence point (``None`` = execute from the entry point).
    #: Serial exploration stores a pool handle, the parallel driver a
    #: ``(worker_id, handle)`` pair — snapshots are process-local.
    snapshot: Optional[object] = None
    #: Branch-record index this item diverges at — always ``bound - 1``
    #: for flip children (``None`` for the root).  Carried explicitly so
    #: a future distributed tier can validate shipped state against its
    #: divergence point without re-deriving it from the bound.
    divergence: Optional[int] = None
    #: Times a worker died while holding this item.  The supervisor
    #: requeues lost items and gives up (recording an *incomplete* path)
    #: once this crosses its retry budget, so one poisonous input cannot
    #: crash-loop the campaign forever.
    failures: int = 0


# Structural digests are memoized per process.  The digest function is
# deliberately independent of the interpreter's randomized string hash
# seed (blake2b for strings, a fixed 64-bit mixer for structure), so
# digests agree not only between a parent and its forked workers but
# across *restarts* — checkpoint resume (core/checkpoint.py) persists
# explored-flip digests and replays them into a fresh process.
# Keyed by the term object (identity hash, O(1)) rather than id() so a
# term can never alias a stale entry after an interner reset.  Bounded
# like the decoder cache: true-LRU via dict reinsertion, evicting the
# oldest entry at capacity so a long exploration over many distinct
# terms cannot grow the memo without limit.
_DIGEST_MEMO: dict = {}

_MASK64 = (1 << 64) - 1

#: Per-process memo of string digests (variable names, opcodes recur).
_STRING_DIGESTS: dict[str, int] = {}


def _mix64(value: int) -> int:
    """splitmix64 finalizer: a fixed, seed-free 64-bit bijection."""
    value &= _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def _string_digest(text: str) -> int:
    cached = _STRING_DIGESTS.get(text)
    if cached is None:
        cached = int.from_bytes(
            hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest(), "little"
        )
        _STRING_DIGESTS[text] = cached
    return cached


def _payload_digest(payload) -> int:
    """Restart-stable digest of a term's payload (name/const/indices)."""
    if payload is None:
        return 0x9E3779B97F4A7C15
    if isinstance(payload, str):
        return _string_digest(payload)
    if isinstance(payload, int):  # bools included
        return _mix64(payload ^ 0x632BE59BD9B4E019)
    if isinstance(payload, tuple):
        digest = 0x1F83D9ABFB41BD6B
        for part in payload:
            digest = _mix64(digest ^ _payload_digest(part))
        return digest
    return _string_digest(repr(payload))  # pragma: no cover - defensive

#: Backstop for the digest memo, matching the decoder/plan caches.
DIGEST_MEMO_CAPACITY = 1 << 17


def term_digest(term: T.Term) -> int:
    """Restart-stable structural hash of a term DAG.

    Interned-term identity is only meaningful within one process, so
    the parallel driver cannot compare conditions across workers
    directly; this digest depends only on (op, width, payload,
    children) and never on the interpreter's randomized hash seed, so
    it agrees across forked workers *and* across separate invocations —
    the property checkpoint resume relies on to skip already-explored
    flips after a restart.
    """
    memo = _DIGEST_MEMO
    cached = memo.get(term)
    if cached is not None:
        # Move-to-end keeps insertion order = recency order, so the
        # eviction below always removes the least recently used digest.
        del memo[term]
        memo[term] = cached
        return cached
    stack = [(term, False)]
    while stack:
        node, ready = stack.pop()
        if node in memo:
            continue
        if not ready:
            stack.append((node, True))
            for arg in node.args:
                if arg not in memo:
                    stack.append((arg, False))
            continue
        digest = _string_digest(node.op)
        digest = _mix64(digest ^ _payload_digest(node.width))
        digest = _mix64(digest ^ _payload_digest(node.payload))
        for arg in node.args:
            digest = _mix64(digest ^ memo[arg])
        memo[node] = digest
    digest = memo[term]
    # Trim after the traversal, not during it: evicting mid-walk could
    # drop a subterm digest a pending parent still needs.  Oldest-first
    # eviction never touches the entries this call just inserted until
    # everything older is gone.
    while len(memo) > DIGEST_MEMO_CAPACITY:
        del memo[next(iter(memo))]
    return digest


def query_digest(conditions) -> int:
    """Order-sensitive digest of a full flip query (prefix + negation)."""
    digest = 0x2545F4914F6CDD1D
    for term in conditions:
        digest = _mix64(digest ^ term_digest(term))
        digest = _mix64(digest + 0xD1B54A32D192ED03)
    return digest


class Frontier:
    """The exploration work queue.

    Wraps a :class:`repro.core.strategy.Strategy` (or builds one by
    name) and keeps scheduling statistics.  Items are
    :class:`WorkItem`s; the policy object itself stays item-agnostic.
    """

    def __init__(self, strategy="dfs", seed: int = 0):
        if isinstance(strategy, Strategy):
            self._strategy = strategy
        else:
            self._strategy = make_strategy(strategy, seed)
        self.pushed = 0
        self.popped = 0
        self.peak = 0

    def push(self, item: WorkItem) -> None:
        self._strategy.push(item)
        self.pushed += 1
        self.peak = max(self.peak, len(self._strategy))

    def pop(self) -> WorkItem:
        self.popped += 1
        return self._strategy.pop()

    def items(self) -> list:
        """Non-destructive snapshot of the queued items (checkpointing)."""
        return self._strategy.items()

    def drain(self) -> list:
        """Pop every queued item (deadline expiry: the drivers count the
        drained items into ``incomplete_paths`` after checkpointing them,
        so an anytime run's unexplored remainder is explicit)."""
        drained = []
        while self._strategy:
            drained.append(self.pop())
        return drained

    def __len__(self) -> int:
        return len(self._strategy)

    def __bool__(self) -> bool:
        return len(self._strategy) > 0


@dataclass
class RunStats:
    """Solver-side accounting for one concolic run's expansion.

    Per-query attribution is three-way and exact: a flip query counts
    towards ``sat_checks``/``unsat_checks`` only when the CDCL core
    actually ran for it, towards ``cache_hits`` when the query cache
    answered without a solve, and towards ``fast_path_answers`` when
    the preprocessing pipeline (rewriting / intervals) decided it with
    neither.  ``sat_solves`` additionally counts the raw per-slice CDCL
    invocations those solved queries needed.
    """

    sat_checks: int = 0
    unsat_checks: int = 0
    cache_hits: int = 0
    fast_path_answers: int = 0
    sat_solves: int = 0
    pruned_queries: int = 0
    #: Flip queries the solver gave up on (work budget exhausted; see
    #: ``PreprocessConfig.conflict_budget``).  The branch is *not*
    #: flipped, so every path missing from a budgeted run is accounted
    #: for by this counter — the sound-degradation contract.
    unknown_queries: int = 0
    solver_time: float = 0.0
    #: PCs of flippable branches seen in the run (for branch coverage).
    covered_pcs: set = field(default_factory=set)
    #: Per-PC flippable-branch execution counts (hotness feedback for
    #: the superblock layer; see repro.spec.superblock).
    pc_hits: dict = field(default_factory=dict)

    def merge(self, other: "RunStats") -> None:
        self.sat_checks += other.sat_checks
        self.unsat_checks += other.unsat_checks
        self.cache_hits += other.cache_hits
        self.fast_path_answers += other.fast_path_answers
        self.sat_solves += other.sat_solves
        self.pruned_queries += other.pruned_queries
        self.unknown_queries += other.unknown_queries
        self.solver_time += other.solver_time
        self.covered_pcs |= other.covered_pcs
        for pc, count in other.pc_hits.items():
            self.pc_hits[pc] = self.pc_hits.get(pc, 0) + count


def expand_run(
    run,
    bound: int,
    solver: Solver,
    variables,
    stats: RunStats,
    trie: Optional[ExploredPrefixTrie] = None,
    compute_digests: bool = False,
    snapshots: Optional[dict] = None,
) -> list[WorkItem]:
    """Generate flipped-branch children of a completed run.

    Children are returned shallow-to-deep, so a LIFO frontier (DFS)
    explores the deepest unexplored branch first — the classic
    depth-first concolic schedule.  ``bound`` prevents re-flipping
    decisions an ancestor already enumerated; the optional ``trie``
    additionally skips flip queries some *other* path already issued
    (which happens when a run diverges from its predicted path).

    ``stats`` receives exact accounting: every answered query counts as
    sat/unsat only when the CDCL core actually ran — cache hits,
    preprocessing fast-path answers and trie prunes are tracked
    separately — and ``solver_time`` covers model extraction, not just
    the satisfiability check.

    With ``compute_digests`` each child carries the structural digest
    of the query that produced it, so a parent process coordinating
    several workers (whose tries are per-process) can drop children of
    flip queries another worker already expanded.

    ``snapshots`` (record index -> pool handle, from
    ``RunResult.snapshots``) attaches to each child the snapshot its
    divergence point was captured under, so the drivers can resume the
    child's run there instead of re-executing the shared prefix.
    """
    children: list[WorkItem] = []
    records = run.trace.records
    conditions = run.trace.conditions()
    cache = getattr(solver, "cache", None)
    node = trie.root() if trie is not None else None
    pc_hits = stats.pc_hits
    for index, record in enumerate(records):
        if record.flippable:
            stats.covered_pcs.add(record.pc)
            pc_hits[record.pc] = pc_hits.get(record.pc, 0) + 1
        if index >= bound and record.flippable:
            negated = record.negated()
            if trie is not None and not trie.try_mark(node, negated):
                stats.pruned_queries += 1
            else:
                query = conditions[:index] + [negated]
                hits_before = cache.hits if cache is not None else 0
                solves_before = solver.num_solves
                check_start = time.perf_counter()
                verdict = solver.check(query)
                if verdict is Result.SAT:
                    model = solver.model()
                    children.append(
                        WorkItem(
                            run.assignment.derive(model, variables),
                            index + 1,
                            digest=query_digest(query) if compute_digests else None,
                            snapshot=(
                                snapshots.get(index)
                                if snapshots is not None
                                else None
                            ),
                            divergence=index,
                        )
                    )
                stats.solver_time += time.perf_counter() - check_start
                delta_solves = solver.num_solves - solves_before
                if verdict is Result.UNKNOWN:
                    # Budget exhausted: the branch is not flipped and the
                    # query is attributed here, never to sat/unsat counts.
                    stats.unknown_queries += 1
                    stats.sat_solves += delta_solves
                elif delta_solves:
                    stats.sat_solves += delta_solves
                    if verdict is Result.SAT:
                        stats.sat_checks += 1
                    else:
                        stats.unsat_checks += 1
                elif cache is not None and cache.hits > hits_before:
                    stats.cache_hits += 1
                else:
                    stats.fast_path_answers += 1
        if trie is not None:
            node = trie.step(node, record.condition)
    return children


def serialize_assignment(assignment: InputAssignment) -> tuple:
    """Flatten a term-keyed assignment into picklable (name, width, value)s."""
    return tuple(
        (variable.payload, variable.width, value)
        for variable, value in assignment.values.items()
    )


def deserialize_assignment(payload) -> InputAssignment:
    """Rebuild an assignment, re-interning its variables in this process."""
    values = {}
    for name, width, value in payload:
        variable = T.bv_var(name, width) if width else T.bool_var(name)
        values[variable] = value
    return InputAssignment(values)
