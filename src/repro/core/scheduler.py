"""Work-queue scheduling for path exploration.

This module is the seam between *what* gets explored and *how*: the
exploration drivers (serial :class:`repro.core.explorer.Explorer`,
multi-process :class:`repro.core.parallel.ProcessPoolExplorer`) both
operate on

* :class:`WorkItem` — one pending concolic run (input assignment plus
  the branch index below which ancestors already enumerated flips),
* :class:`Frontier` — the work queue, parameterized by a pluggable
  :mod:`repro.core.strategy` policy (DFS, BFS, random, coverage-guided)
  with push/pop/peak-size accounting,
* :func:`expand_run` — the branch-flip step of the paper's offline
  executor (Sect. III-B): pose one solver query per flippable branch
  beyond the bound, collect satisfiable flips as new work items,
* :class:`RunStats` — exact per-run solver accounting, merged into the
  exploration result identically whether the run happened inline or on
  a worker process.

Assignments cross process boundaries by *name*: interned terms hash by
identity, so a pickled term would no longer match its interner entry on
the other side.  :func:`serialize_assignment` and
:func:`deserialize_assignment` translate between term-keyed assignments
and plain (name, width, value) tuples.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from ..smt import terms as T
from ..smt.solver import Result, Solver
from .state import ExploredPrefixTrie, InputAssignment
from .strategy import Strategy, make_strategy

__all__ = [
    "WorkItem",
    "Frontier",
    "RunStats",
    "expand_run",
    "query_digest",
    "serialize_assignment",
    "deserialize_assignment",
]


@dataclass
class WorkItem:
    """One pending concolic run.

    ``bound`` is the classic concolic re-flip barrier: branch indices
    below it were already enumerated by ancestors and must not be
    flipped again.  ``novelty`` scores how much new branch coverage the
    *parent* run contributed; the coverage-guided strategy prioritizes
    on it and the others ignore it.  ``digest`` identifies the flip
    query that produced this item (see :func:`query_digest`); the
    parallel driver uses it to deduplicate children across workers.
    """

    assignment: InputAssignment
    bound: int
    novelty: int = 0
    digest: Optional[int] = None
    #: Opaque snapshot handle the run that spawned this item captured at
    #: the divergence point (``None`` = execute from the entry point).
    #: Serial exploration stores a pool handle, the parallel driver a
    #: ``(worker_id, handle)`` pair — snapshots are process-local.
    snapshot: Optional[object] = None
    #: Branch-record index this item diverges at — always ``bound - 1``
    #: for flip children (``None`` for the root).  Carried explicitly so
    #: a future distributed tier can validate shipped state against its
    #: divergence point without re-deriving it from the bound.
    divergence: Optional[int] = None
    #: Times a worker died while holding this item.  The supervisor
    #: requeues lost items and gives up (recording an *incomplete* path)
    #: once this crosses its retry budget, so one poisonous input cannot
    #: crash-loop the campaign forever.
    failures: int = 0


# Structural digests live in repro.smt.digest — one restart-stable
# content-hash scheme shared by flip dedup (here), the query-cache
# integrity digests (repro.smt.solver.QueryCache) and the persistent
# artifact store (repro.core.store).  Re-exported under their historic
# names; callers and tests may keep importing them from this module.
from ..smt.digest import (  # noqa: E402  (re-export)
    DIGEST_MEMO_CAPACITY,  # noqa: F401
    query_digest,
    term_digest,
)


class Frontier:
    """The exploration work queue.

    Wraps a :class:`repro.core.strategy.Strategy` (or builds one by
    name) and keeps scheduling statistics.  Items are
    :class:`WorkItem`s; the policy object itself stays item-agnostic.
    """

    def __init__(self, strategy="dfs", seed: int = 0):
        if isinstance(strategy, Strategy):
            self._strategy = strategy
        else:
            self._strategy = make_strategy(strategy, seed)
        self.pushed = 0
        self.popped = 0
        self.peak = 0

    def push(self, item: WorkItem) -> None:
        self._strategy.push(item)
        self.pushed += 1
        self.peak = max(self.peak, len(self._strategy))

    def pop(self) -> WorkItem:
        self.popped += 1
        return self._strategy.pop()

    def items(self) -> list:
        """Non-destructive snapshot of the queued items (checkpointing)."""
        return self._strategy.items()

    def drain(self) -> list:
        """Pop every queued item (deadline expiry: the drivers count the
        drained items into ``incomplete_paths`` after checkpointing them,
        so an anytime run's unexplored remainder is explicit)."""
        drained = []
        while self._strategy:
            drained.append(self.pop())
        return drained

    def __len__(self) -> int:
        return len(self._strategy)

    def __bool__(self) -> bool:
        return len(self._strategy) > 0


@dataclass
class RunStats:
    """Solver-side accounting for one concolic run's expansion.

    Per-query attribution is three-way and exact: a flip query counts
    towards ``sat_checks``/``unsat_checks`` only when the CDCL core
    actually ran for it, towards ``cache_hits`` when the query cache
    answered without a solve, and towards ``fast_path_answers`` when
    the preprocessing pipeline (rewriting / intervals) decided it with
    neither.  ``sat_solves`` additionally counts the raw per-slice CDCL
    invocations those solved queries needed.
    """

    sat_checks: int = 0
    unsat_checks: int = 0
    cache_hits: int = 0
    fast_path_answers: int = 0
    sat_solves: int = 0
    pruned_queries: int = 0
    #: Flip queries the solver gave up on (work budget exhausted; see
    #: ``PreprocessConfig.conflict_budget``).  The branch is *not*
    #: flipped, so every path missing from a budgeted run is accounted
    #: for by this counter — the sound-degradation contract.
    unknown_queries: int = 0
    solver_time: float = 0.0
    #: PCs of flippable branches seen in the run (for branch coverage).
    covered_pcs: set = field(default_factory=set)
    #: Per-PC flippable-branch execution counts (hotness feedback for
    #: the superblock layer; see repro.spec.superblock).
    pc_hits: dict = field(default_factory=dict)

    def merge(self, other: "RunStats") -> None:
        self.sat_checks += other.sat_checks
        self.unsat_checks += other.unsat_checks
        self.cache_hits += other.cache_hits
        self.fast_path_answers += other.fast_path_answers
        self.sat_solves += other.sat_solves
        self.pruned_queries += other.pruned_queries
        self.unknown_queries += other.unknown_queries
        self.solver_time += other.solver_time
        self.covered_pcs |= other.covered_pcs
        for pc, count in other.pc_hits.items():
            self.pc_hits[pc] = self.pc_hits.get(pc, 0) + count


def expand_run(
    run,
    bound: int,
    solver: Solver,
    variables,
    stats: RunStats,
    trie: Optional[ExploredPrefixTrie] = None,
    compute_digests: bool = False,
    snapshots: Optional[dict] = None,
) -> list[WorkItem]:
    """Generate flipped-branch children of a completed run.

    Children are returned shallow-to-deep, so a LIFO frontier (DFS)
    explores the deepest unexplored branch first — the classic
    depth-first concolic schedule.  ``bound`` prevents re-flipping
    decisions an ancestor already enumerated; the optional ``trie``
    additionally skips flip queries some *other* path already issued
    (which happens when a run diverges from its predicted path).

    ``stats`` receives exact accounting: every answered query counts as
    sat/unsat only when the CDCL core actually ran — cache hits,
    preprocessing fast-path answers and trie prunes are tracked
    separately — and ``solver_time`` covers model extraction, not just
    the satisfiability check.

    With ``compute_digests`` each child carries the structural digest
    of the query that produced it, so a parent process coordinating
    several workers (whose tries are per-process) can drop children of
    flip queries another worker already expanded.

    ``snapshots`` (record index -> pool handle, from
    ``RunResult.snapshots``) attaches to each child the snapshot its
    divergence point was captured under, so the drivers can resume the
    child's run there instead of re-executing the shared prefix.
    """
    children: list[WorkItem] = []
    records = run.trace.records
    conditions = run.trace.conditions()
    cache = getattr(solver, "cache", None)
    node = trie.root() if trie is not None else None
    pc_hits = stats.pc_hits
    for index, record in enumerate(records):
        if record.flippable:
            stats.covered_pcs.add(record.pc)
            pc_hits[record.pc] = pc_hits.get(record.pc, 0) + 1
        if index >= bound and record.flippable:
            negated = record.negated()
            if trie is not None and not trie.try_mark(node, negated):
                stats.pruned_queries += 1
            else:
                query = conditions[:index] + [negated]
                hits_before = cache.hits if cache is not None else 0
                solves_before = solver.num_solves
                check_start = time.perf_counter()
                verdict = solver.check(query)
                if verdict is Result.SAT:
                    model = solver.model()
                    children.append(
                        WorkItem(
                            run.assignment.derive(model, variables),
                            index + 1,
                            digest=query_digest(query) if compute_digests else None,
                            snapshot=(
                                snapshots.get(index)
                                if snapshots is not None
                                else None
                            ),
                            divergence=index,
                        )
                    )
                stats.solver_time += time.perf_counter() - check_start
                delta_solves = solver.num_solves - solves_before
                if verdict is Result.UNKNOWN:
                    # Budget exhausted: the branch is not flipped and the
                    # query is attributed here, never to sat/unsat counts.
                    stats.unknown_queries += 1
                    stats.sat_solves += delta_solves
                elif delta_solves:
                    stats.sat_solves += delta_solves
                    if verdict is Result.SAT:
                        stats.sat_checks += 1
                    else:
                        stats.unsat_checks += 1
                elif cache is not None and cache.hits > hits_before:
                    stats.cache_hits += 1
                else:
                    stats.fast_path_answers += 1
        if trie is not None:
            node = trie.step(node, record.condition)
    return children


def serialize_assignment(assignment: InputAssignment) -> tuple:
    """Flatten a term-keyed assignment into picklable (name, width, value)s."""
    return tuple(
        (variable.payload, variable.width, value)
        for variable, value in assignment.values.items()
    )


def deserialize_assignment(payload) -> InputAssignment:
    """Rebuild an assignment, re-interning its variables in this process."""
    values = {}
    for name, width, value in payload:
        variable = T.bv_var(name, width) if width else T.bool_var(name)
        values[variable] = value
    return InputAssignment(values)
