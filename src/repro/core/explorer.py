"""Offline dynamic symbolic execution: the path exploration driver.

Implements the paper's exploration configuration (Sect. III-B): an
*offline executor* that repeatedly restarts the SUT with fresh inputs
obtained from the solver — dynamic symbolic execution with pluggable
path selection and address concretization.

The driver is engine-neutral: anything satisfying the executor
interface (``execute(assignment) -> RunResult``, ``input_variables()``)
can be explored, which is how the angr-, BINSEC- and SymEx-VP-style
baseline engines share the exact same search and solver infrastructure
— the comparison then isolates the *translation* methodology, like the
paper's evaluation intends.

Scheduling (frontier policies, branch-flip expansion) lives in
:mod:`repro.core.scheduler`; multi-process exploration in
:mod:`repro.core.parallel`.  ``Explorer(executor, jobs=N)`` fans the
concolic runs out over ``N`` worker processes, and ``use_cache=True``
puts a cross-path :class:`repro.smt.solver.QueryCache` in front of the
solver.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from ..arch.hart import HaltReason
from ..smt.preprocess import PreprocessConfig
from ..smt.solver import CachingSolver, Solver
from ..spec.superblock import BRANCH_HOT_HITS
from .executor import RunResult
from .scheduler import Frontier, RunStats, WorkItem, expand_run, query_digest
from .state import ExploredPrefixTrie, InputAssignment

__all__ = [
    "PathInfo",
    "ExplorationResult",
    "Explorer",
    "apply_staging",
    "apply_superblocks",
    "make_solver",
    "install_fault_hooks",
]


def make_solver(
    use_cache: bool,
    preprocess: Optional[PreprocessConfig],
    store_dir: Optional[str] = None,
):
    """Build the exploration solver for one driver (or one worker).

    ``use_cache`` selects the pipelined :class:`CachingSolver`; without
    it the plain :class:`Solver` still honours the solver-layer knobs
    (trail reuse) carried by the preprocess config, so the ablation
    flags behave identically in cached and uncached runs.

    ``store_dir`` (``--store DIR``) attaches the persistent artifact
    tier behind the query cache — each driver/worker owns its own
    :class:`repro.core.store.ArtifactStore` handle on the shared
    directory (reads are per-call, writes single-writer-per-process),
    so the handle is safe to construct before a fork.  A store implies
    the query layer: persisting answers requires the cache pipeline, so
    ``store_dir`` selects :class:`CachingSolver` even when ``use_cache``
    is off (asking to persist answers that are never collected would be
    a silent no-op).
    """
    if use_cache or store_dir is not None:
        solver = CachingSolver(preprocess=preprocess)
        if store_dir is not None:
            from .store import ArtifactStore

            certify = bool(preprocess is not None and preprocess.certify)
            solver.cache.attach_store(ArtifactStore(store_dir, certify=certify))
        return solver
    if preprocess is None:
        return Solver()
    return Solver(
        trail_reuse=preprocess.trail_reuse,
        conflict_budget=preprocess.conflict_budget,
        propagation_budget=preprocess.propagation_budget,
        wall_budget=preprocess.wall_budget,
        core_budget=preprocess.core_budget,
        certify=preprocess.certify,
        proof_log=preprocess.proof_log,
    )


def install_fault_hooks(solver, faults, scope) -> None:
    """Attach one driver's fault schedule to its solver (and cache).

    Used identically by the serial driver and every pool worker:
    ``unknown=`` give-ups go to the CDCL fault hook, ``corrupt=``
    poisoning to the query cache's corruptor seam (a solver without a
    cache simply has nothing to poison).
    """
    if faults is None:
        return
    hook = faults.solver_hook(scope)
    if hook is not None and hasattr(solver, "set_fault_hook"):
        solver.set_fault_hook(hook)
    corruptor = faults.corruptor(scope)
    cache = getattr(solver, "cache", None)
    if corruptor is not None and cache is not None:
        cache.set_corruptor(corruptor)
    store = getattr(cache, "store", None)
    if store is not None:
        store_hook = faults.store_hook(scope)
        if store_hook is not None:
            store.set_fault_hook(store_hook)
        if corruptor is not None:
            store.set_corruptor(corruptor)


def apply_staging(executor, staging: Optional[bool]) -> Optional[bool]:
    """Apply the staged-semantics ablation (--no-staging) to an executor.

    Called once at every exploration entry point (serial and pooled)
    *before* any run — and before the fork, so workers inherit the
    setting and serial/parallel behave identically.  Returns the value
    to forward downstream: ``None`` once applied, so a delegation chain
    reconfigures the executor exactly once.  ``None`` in leaves the
    executor's own configuration untouched.
    """
    if staging is not None and hasattr(executor, "set_staging"):
        executor.set_staging(staging)
        return None
    return staging


def apply_superblocks(executor, superblocks: Optional[bool]) -> Optional[bool]:
    """Apply the superblock ablation (--no-superblocks) to an executor.

    Same contract as :func:`apply_staging`: applied once, before any run
    and before the worker fork, returning ``None`` once consumed so the
    delegation chain reconfigures the executor exactly once.
    """
    if superblocks is not None and hasattr(executor, "set_superblocks"):
        executor.set_superblocks(superblocks)
        return None
    return superblocks


@dataclass
class PathInfo:
    """Summary of one fully executed path."""

    index: int
    halt_reason: Optional[str]
    exit_code: Optional[int]
    instret: int
    trace_length: int
    assignment: InputAssignment
    stdout: bytes
    final_pc: int = 0
    #: Order-sensitive digest chain of the path's branch conditions and
    #: assumptions (certify mode only; ``None`` otherwise) — the logical
    #: path identity a certificate replay re-derives and compares.
    condition_digest: Optional[int] = None

    @property
    def is_assertion_failure(self) -> bool:
        return self.halt_reason == HaltReason.EBREAK


@dataclass
class ExplorationResult:
    """All paths found plus exploration statistics.

    Query accounting is exact in both execution modes: ``sat_checks``
    and ``unsat_checks`` count queries the SAT core actually solved
    (summed over all workers in parallel mode), ``sat_solves`` the raw
    per-slice CDCL invocations behind them, while ``cache_hits``,
    ``fast_path_answers`` and ``pruned_queries`` count work the query
    cache, the preprocessing pipeline and the explored-prefix trie
    avoided.  ``solver_stats`` carries the flat cache/pipeline counter
    dict (:attr:`repro.smt.solver.CachingSolver.pipeline_statistics`),
    key-wise summed across workers.
    """

    paths: list[PathInfo] = field(default_factory=list)
    sat_checks: int = 0
    unsat_checks: int = 0
    cache_hits: int = 0
    fast_path_answers: int = 0
    sat_solves: int = 0
    pruned_queries: int = 0
    #: Flip queries the solver abandoned (work budget exhausted or
    #: injected give-up).  Together with ``incomplete_paths`` this
    #: accounts for every path a degraded run did not explore — the
    #: fault-tolerance contract: ``path_set()`` shrinks only by
    #: explicitly counted causes, never silently.
    unknown_queries: int = 0
    #: Work items abandoned after repeated worker deaths, plus frontier
    #: items drained when a ``--deadline`` expired (each is one
    #: unexplored path plus its would-be subtree).
    incomplete_paths: int = 0
    #: Worker processes that died mid-item and were respawned.
    worker_deaths: int = 0
    #: Worker seats the heartbeat watchdog declared hung and killed
    #: (each also counts as a worker death once the kill lands).
    hung_workers: int = 0
    #: Memory-governor ladder rungs applied under RSS pressure, summed
    #: over every process.  Non-zero means the run traded speed (cache
    #: capacity, snapshot reuse) for memory — never paths.
    degradations: int = 0
    #: The global ``--deadline`` fired: the frontier was drained into
    #: ``incomplete_paths`` and the run checkpointed for ``--resume``.
    #: Not persisted — a resumed run gets a fresh deadline.
    deadline_expired: bool = False
    #: Exploration ended by Ctrl-C (or an injected interrupt) — the
    #: result is a valid partial campaign, resumable via checkpoints.
    interrupted: bool = False
    total_instructions: int = 0
    #: Instructions actually interpreted: ``total_instructions`` minus
    #: the prefixes snapshot resumption skipped (equal when snapshots
    #: are off — ``total_instructions`` always counts full path lengths).
    executed_instructions: int = 0
    wall_time: float = 0.0
    solver_time: float = 0.0
    truncated: bool = False
    #: Number of worker processes that executed runs (1 = in-process).
    workers: int = 1
    #: Largest frontier size observed during the exploration.
    frontier_peak: int = 0
    #: PCs of symbolic branches seen during exploration (branch coverage).
    covered_branches: set = field(default_factory=set)
    #: Flat solver-side counters (cache tiers, pipeline stages, core
    #: solves), exactly summed over every worker's solver.
    solver_stats: dict = field(default_factory=dict)
    #: Flat snapshot-layer counters (captures, resumed runs, saved
    #: instructions, pool evictions/misses), summed over every worker's
    #: executor; empty when the engine has no snapshot support.
    snapshot_stats: dict = field(default_factory=dict)
    #: Flat superblock-layer counters (block hits, instructions retired
    #: in blocks, builds, deopts, invalidations), summed over every
    #: worker's executor; empty when the engine has no superblock
    #: support or superblocks are off.
    superblock_stats: dict = field(default_factory=dict)
    #: Certify-mode replay accounting: paths whose certificates checked
    #: under the reference evaluator, and paths with at least one
    #: mismatching field (see :mod:`repro.core.certificates`).
    certified_paths: int = 0
    certificate_failures: int = 0
    #: One :class:`repro.core.certificates.PathCertificate` per recorded
    #: path (certify mode only), in path order.
    certificates: list = field(default_factory=list)
    #: Human-readable mismatch messages from the certify replay.
    certificate_errors: list = field(default_factory=list)
    #: Flat memory-governor counters (samples, pressure events, per-rung
    #: applications), summed over every process; empty without
    #: ``--memory-budget``.
    governor_stats: dict = field(default_factory=dict)

    @property
    def num_paths(self) -> int:
        return len(self.paths)

    @property
    def num_queries(self) -> int:
        """Queries the SAT core actually solved."""
        return self.sat_checks + self.unsat_checks

    @property
    def assertion_failures(self) -> list[PathInfo]:
        return [p for p in self.paths if p.is_assertion_failure]

    @property
    def exit_codes(self) -> set[int]:
        return {p.exit_code for p in self.paths if p.exit_code is not None}

    def path_set(self) -> set:
        """Order-independent identity of the discovered paths.

        Parallel exploration records paths in completion order, so
        comparisons across execution modes go through this set.
        """
        return {
            (p.halt_reason, p.exit_code, p.trace_length, p.stdout, p.final_pc)
            for p in self.paths
        }

    def merge_run_stats(self, stats: RunStats) -> None:
        """Fold one run's solver accounting into the totals."""
        self.sat_checks += stats.sat_checks
        self.unsat_checks += stats.unsat_checks
        self.cache_hits += stats.cache_hits
        self.fast_path_answers += stats.fast_path_answers
        self.sat_solves += stats.sat_solves
        self.pruned_queries += stats.pruned_queries
        self.unknown_queries += stats.unknown_queries
        self.solver_time += stats.solver_time
        self.covered_branches |= stats.covered_pcs

    def merge_solver_stats(self, stats: dict) -> None:
        """Key-wise sum of one solver's flat counter dict."""
        for key, value in stats.items():
            self.solver_stats[key] = self.solver_stats.get(key, 0) + value

    def merge_snapshot_stats(self, stats: dict) -> None:
        """Key-wise sum of one executor's flat snapshot counter dict."""
        for key, value in stats.items():
            self.snapshot_stats[key] = self.snapshot_stats.get(key, 0) + value

    def merge_superblock_stats(self, stats: dict) -> None:
        """Key-wise sum of one executor's flat superblock counter dict."""
        for key, value in stats.items():
            self.superblock_stats[key] = self.superblock_stats.get(key, 0) + value

    def merge_governor_stats(self, stats: dict) -> None:
        """Key-wise sum of one process's flat governor counter dict."""
        for key, value in stats.items():
            self.governor_stats[key] = self.governor_stats.get(key, 0) + value
        self.degradations += stats.get("gov_rungs_applied", 0)

    @property
    def superblock_hits(self) -> int:
        """Step-loop dispatches that executed a superblock."""
        return self.superblock_stats.get("sb_hits", 0)

    @property
    def superblock_instructions(self) -> int:
        """Instructions retired inside superblocks (of total_instructions)."""
        return self.superblock_stats.get("sb_block_instructions", 0)

    @property
    def store_hits(self) -> int:
        """Verified warm hits served by the persistent store (``--store``)."""
        return self.solver_stats.get("store_hits", 0)

    @property
    def store_quarantines(self) -> int:
        """Store files that failed verification and were renamed aside."""
        return self.solver_stats.get("store_quarantines", 0)

    @property
    def store_disabled(self) -> int:
        """Processes whose store tier disabled itself after an I/O failure."""
        return self.solver_stats.get("store_disabled", 0)

    @property
    def resumed_runs(self) -> int:
        """Runs that resumed from a snapshot instead of ``pc = entry``."""
        return self.snapshot_stats.get("snap_resumed_runs", 0)

    @property
    def saved_instructions(self) -> int:
        """Prefix instructions snapshot resumption did not re-execute."""
        return self.snapshot_stats.get("snap_saved_instructions", 0)

    def summary(self) -> str:
        text = (
            f"{self.num_paths} paths "
            f"({len(self.assertion_failures)} assertion failures), "
            f"{self.num_queries} solver queries "
            f"({self.sat_checks} sat / {self.unsat_checks} unsat, "
            f"{self.solver_time:.2f}s in solver), "
            f"{self.total_instructions} instructions, "
            f"{self.wall_time:.2f}s"
        )
        if self.cache_hits or self.fast_path_answers or self.pruned_queries:
            text += (
                f" [{self.cache_hits} cache hits, "
                f"{self.fast_path_answers} fast-path, "
                f"{self.pruned_queries} pruned]"
            )
        if self.resumed_runs:
            text += (
                f" [{self.resumed_runs} resumed runs, "
                f"{self.saved_instructions} instructions skipped]"
            )
        if self.workers > 1:
            text += f" [{self.workers} workers]"
        if self.unknown_queries or self.incomplete_paths:
            text += (
                f" [degraded: {self.unknown_queries} unknown queries, "
                f"{self.incomplete_paths} incomplete paths]"
            )
        if self.worker_deaths:
            text += f" [{self.worker_deaths} worker deaths]"
        if self.hung_workers:
            text += f" [{self.hung_workers} hung workers]"
        if self.degradations:
            text += f" [{self.degradations} memory degradations]"
        if self.store_hits or self.store_quarantines or self.store_disabled:
            text += (
                f" [store: {self.store_hits} warm hits, "
                f"{self.store_quarantines} quarantined, "
                f"{self.store_disabled} disabled]"
            )
        if self.deadline_expired:
            text += " [deadline expired]"
        if self.certified_paths or self.certificate_failures:
            text += (
                f" [certified: {self.certified_paths} paths, "
                f"{self.certificate_failures} failures]"
            )
        if self.interrupted:
            text += " [interrupted]"
        return text


class Explorer:
    """Drives an executor through all feasible paths of the SUT.

    ``jobs > 1`` delegates to the multi-process driver (each worker owns
    its own solver and query cache); ``use_cache`` enables the
    cross-path query cache in the single-process driver, and
    ``preprocess`` configures the word-level query pipeline in front of
    it (slicing / rewriting / intervals — all on by default).  An
    explicitly supplied ``solver`` pins the exploration to a single
    process, since a user-provided facade (e.g. the query-complexity
    recorder) cannot be replicated onto workers.

    Robustness knobs: ``checkpoint_dir`` arms the crash-safe journal
    (:mod:`repro.core.checkpoint`; ``resume=True`` additionally reloads
    it before exploring), and ``faults`` injects a deterministic
    failure schedule (:class:`repro.core.faults.FaultPlan`) for chaos
    testing.  ``KeyboardInterrupt`` is caught in both drivers and
    returns the partial result with ``interrupted=True``.
    """

    def __init__(
        self,
        executor,
        solver: Optional[Solver] = None,
        strategy: str = "dfs",
        max_paths: int = 1_000_000,
        seed: int = 0,
        jobs: int = 1,
        use_cache: bool = False,
        dedup_flips: bool = True,
        preprocess: Optional[PreprocessConfig] = None,
        staging: Optional[bool] = None,
        superblocks: Optional[bool] = None,
        snapshots: bool = True,
        checkpoint_dir: Optional[str] = None,
        checkpoint_interval: int = 1,
        resume: bool = False,
        faults=None,
        deadline: Optional[float] = None,
        memory_budget_mb: Optional[int] = None,
        hang_timeout: float = 5.0,
        store_dir: Optional[str] = None,
    ):
        self._solver_provided = solver is not None
        #: Persistent artifact store directory (``--store DIR``); every
        #: driver/worker attaches its own handle on the shared tree.
        self.store_dir = store_dir
        if solver is None:
            solver = make_solver(use_cache, preprocess, store_dir)
        self.executor = executor
        self.solver = solver
        self.strategy_name = strategy
        self.max_paths = max_paths
        self.seed = seed
        self.jobs = jobs
        self.use_cache = use_cache
        self.dedup_flips = dedup_flips
        self.preprocess = preprocess
        self.staging = apply_staging(executor, staging)
        self.superblocks = apply_superblocks(executor, superblocks)
        # Snapshot-resumed runs (--no-snapshots ablation): only engines
        # advertising support participate; the rest execute every run
        # from the entry point exactly as before.
        self.snapshots = snapshots and getattr(
            executor, "supports_snapshots", False
        )
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_interval = checkpoint_interval
        self.resume = resume
        self.faults = faults if faults is not None and faults.active else None
        #: Anytime knobs (PR 9): a global wall-clock deadline in seconds
        #: (frontier drains into ``incomplete_paths`` when it fires, the
        #: checkpoint stays resumable), a per-process RSS budget in MB
        #: driving the degradation ladder, and the missed-heartbeat
        #: threshold after which the pool supervisor kills a seat.
        self.deadline = deadline
        self.memory_budget_mb = memory_budget_mb
        self.hang_timeout = hang_timeout
        #: Certify mode (``--certify``): record per-path condition
        #: digests during exploration and replay-verify every path
        #: under the reference evaluator once exploration finishes.
        self.certify = preprocess is not None and preprocess.certify

    def explore(self) -> ExplorationResult:
        """Run the full exploration; returns all discovered paths."""
        if self.jobs > 1 and not self._solver_provided:
            from .parallel import ProcessPoolExplorer

            return ProcessPoolExplorer(
                self.executor,
                jobs=self.jobs,
                strategy=self.strategy_name,
                max_paths=self.max_paths,
                seed=self.seed,
                use_cache=self.use_cache,
                dedup_flips=self.dedup_flips,
                preprocess=self.preprocess,
                staging=self.staging,
                superblocks=self.superblocks,
                snapshots=self.snapshots,
                checkpoint_dir=self.checkpoint_dir,
                checkpoint_interval=self.checkpoint_interval,
                resume=self.resume,
                faults=self.faults,
                deadline=self.deadline,
                memory_budget_mb=self.memory_budget_mb,
                hang_timeout=self.hang_timeout,
                store_dir=self.store_dir,
            ).explore()
        return self._explore_serial()

    def _make_checkpoint(self):
        """Build the journal manager (and load prior state on resume)."""
        if self.checkpoint_dir is None:
            return None, None
        from .checkpoint import CheckpointManager

        manager = CheckpointManager(
            self.checkpoint_dir,
            strategy=self.strategy_name,
            seed=self.seed,
            interval=self.checkpoint_interval,
        )
        state = manager.load() if self.resume else None
        return manager, state

    def _live_solver_stats(self) -> dict:
        stats = getattr(self.solver, "pipeline_statistics", None)
        if stats is not None:
            return dict(stats)
        return {"sat_core_solves": self.solver.num_solves}

    @staticmethod
    def _summed(base: dict, live: dict) -> dict:
        total = dict(base)
        for key, value in live.items():
            total[key] = total.get(key, 0) + value
        return total

    def _explore_serial(self) -> ExplorationResult:
        result = ExplorationResult()
        start = time.perf_counter()
        frontier = Frontier(self.strategy_name, self.seed)
        manager, restored = self._make_checkpoint()
        # With checkpointing on, children additionally carry restart-
        # stable flip-query digests; the persisted digest set suppresses
        # re-deriving children a pre-crash run already enqueued.  (The
        # in-process trie below dedups everything within one process
        # lifetime, so on fresh runs the filter never fires.)
        seen_digests: Optional[set] = set() if manager is not None else None
        if restored is not None:
            restored.restore_result(result)
            seen_digests = restored.digests
            for item in restored.frontier_items():
                frontier.push(item)
            if restored.complete:
                result.wall_time = time.perf_counter() - start
                return result
        else:
            frontier.push(WorkItem(InputAssignment(), 0))
        trie = ExploredPrefixTrie() if self.dedup_flips else None
        executor = self.executor
        snapshots = self.snapshots
        faults = self.faults
        install_fault_hooks(self.solver, faults, "serial")
        # Anytime layer: the deadline is absolute (monotonic clock), and
        # the governor reads/flips ``capture_state`` — its bottom rung
        # disables snapshot capture, which the loop below re-reads every
        # run, so degradation takes effect immediately.
        deadline_at = (
            time.monotonic() + self.deadline if self.deadline is not None else None
        )
        capture_state = {"snapshots": snapshots}
        governor = None
        if self.memory_budget_mb is not None:
            from .governor import build_exploration_governor

            governor = build_exploration_governor(
                self.memory_budget_mb, executor, self.solver, capture_state
            )
        memhog_leaks: list = []  # memhog= fault ballast, freed on return
        purge = getattr(executor, "purge_snapshots", None)
        # Superblock hotness feedback: accumulate per-PC flippable-branch
        # executions across runs; a PC crossing the threshold is reported
        # to the executor once, promoting its successors to block entries.
        note_hot = getattr(executor, "note_hot_pcs", None)
        if note_hot is not None and not getattr(executor, "superblocks_enabled", False):
            note_hot = None
        hot_counts: dict = {}
        hot_sent: set = set()
        runs = 0
        try:
            while frontier and result.num_paths < self.max_paths:
                if deadline_at is not None and time.monotonic() >= deadline_at:
                    result.interrupted = True
                    result.deadline_expired = True
                    break
                item = frontier.pop()
                capturing = capture_state["snapshots"]
                if faults is not None and purge is not None and capturing:
                    if faults.should_evict("serial", runs):
                        purge()
                if faults is not None:
                    ballast = faults.memhog_bytes("serial", runs)
                    if ballast:
                        memhog_leaks.append(bytearray(ballast))
                runs += 1
                if capturing:
                    run = executor.execute_from(
                        item.snapshot, item.assignment, capture_from=item.bound
                    )
                else:
                    run = executor.execute(item.assignment)
                if governor is not None:
                    governor.maybe_step()
                self._record_path(result, run)
                stats = RunStats()
                children = expand_run(
                    run,
                    item.bound,
                    self.solver,
                    executor.input_variables(),
                    stats,
                    trie,
                    compute_digests=seen_digests is not None,
                    snapshots=run.snapshots if snapshots else None,
                )
                novelty = len(stats.covered_pcs - result.covered_branches)
                if note_hot is not None and stats.pc_hits:
                    newly_hot = []
                    for pc, count in stats.pc_hits.items():
                        total = hot_counts.get(pc, 0) + count
                        hot_counts[pc] = total
                        if total >= BRANCH_HOT_HITS and pc not in hot_sent:
                            hot_sent.add(pc)
                            newly_hot.append(pc)
                    if newly_hot:
                        note_hot(newly_hot)
                result.merge_run_stats(stats)
                for child in children:
                    if seen_digests is not None and child.digest is not None:
                        if child.digest in seen_digests:
                            result.pruned_queries += 1
                            continue
                        seen_digests.add(child.digest)
                    child.novelty = novelty
                    frontier.push(child)
                if manager is not None:
                    manager.maybe_save(
                        result,
                        frontier.items(),
                        seen_digests,
                        solver_stats=self._summed(
                            result.solver_stats, self._live_solver_stats()
                        ),
                    )
                if faults is not None and faults.interrupt_after is not None:
                    if result.num_paths >= faults.interrupt_after:
                        raise KeyboardInterrupt
        except KeyboardInterrupt:
            result.interrupted = True
        del memhog_leaks[:]
        result.truncated = bool(frontier)
        result.frontier_peak = max(frontier.peak, result.frontier_peak)
        result.merge_solver_stats(self._live_solver_stats())
        if governor is not None:
            result.merge_governor_stats(governor.statistics)
        snapshot_stats = getattr(executor, "snapshot_statistics", None)
        if snapshot_stats is not None and snapshots:
            result.merge_snapshot_stats(dict(snapshot_stats))
        superblock_stats = getattr(executor, "superblock_statistics", None)
        if superblock_stats is not None and getattr(
            executor, "superblocks_enabled", False
        ):
            result.merge_superblock_stats(dict(superblock_stats))
        if manager is not None:
            manager.save(
                result,
                frontier.items(),
                seen_digests,
                complete=not frontier and not result.interrupted,
                solver_stats=result.solver_stats,
                snapshot_stats=result.snapshot_stats,
                superblock_stats=result.superblock_stats,
                governor_stats=result.governor_stats,
            )
        if result.deadline_expired:
            # Anytime accounting: every drained frontier item is one
            # explicitly counted unexplored path.  Counted only AFTER
            # the final checkpoint save — a ``--resume`` restores these
            # items into its frontier and re-explores them, so
            # persisting the count too would double-book them.
            result.incomplete_paths += len(frontier.drain())
        if self.certify:
            from .certificates import verify_result

            verify_result(result, executor)
            self._persist_certificates(result)
        result.wall_time = time.perf_counter() - start
        return result

    def _persist_certificates(self, result: ExplorationResult) -> None:
        """Write replay-checked certificates to the persistent store.

        Only certificates that just *passed* replay are persisted — the
        store holds evidence, not claims.  Content-addressed, so
        re-running the same campaign rewrites nothing.
        """
        store = getattr(getattr(self.solver, "cache", None), "store", None)
        if store is None or not result.certificates:
            return
        from .certificates import certificate_to_state

        if result.certificate_failures:
            return
        for cert in result.certificates:
            store.save_certificate(certificate_to_state(cert))

    # ------------------------------------------------------------------

    def _record_path(self, result: ExplorationResult, run: RunResult) -> None:
        result.total_instructions += run.instret
        result.executed_instructions += run.instret - run.resumed_instret
        result.paths.append(
            PathInfo(
                index=len(result.paths),
                halt_reason=run.halt_reason,
                exit_code=run.exit_code,
                instret=run.instret,
                trace_length=len(run.trace),
                assignment=run.assignment,
                stdout=run.stdout,
                final_pc=run.final_pc,
                condition_digest=(
                    query_digest(run.trace.conditions()) if self.certify else None
                ),
            )
        )
