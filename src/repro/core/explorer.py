"""Offline dynamic symbolic execution: the path exploration driver.

Implements the paper's exploration configuration (Sect. III-B): an
*offline executor* that repeatedly restarts the SUT with fresh inputs
obtained from the solver — dynamic symbolic execution with depth-first
path selection and address concretization.

The driver is engine-neutral: anything satisfying the executor
interface (``execute(assignment) -> RunResult``, ``input_variables()``)
can be explored, which is how the angr-, BINSEC- and SymEx-VP-style
baseline engines share the exact same search and solver infrastructure
— the comparison then isolates the *translation* methodology, like the
paper's evaluation intends.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from ..arch.hart import HaltReason
from ..smt.solver import Result, Solver
from .executor import RunResult
from .state import InputAssignment
from .strategy import Strategy, make_strategy

__all__ = ["PathInfo", "ExplorationResult", "Explorer"]


@dataclass
class PathInfo:
    """Summary of one fully executed path."""

    index: int
    halt_reason: Optional[str]
    exit_code: Optional[int]
    instret: int
    trace_length: int
    assignment: InputAssignment
    stdout: bytes
    final_pc: int = 0

    @property
    def is_assertion_failure(self) -> bool:
        return self.halt_reason == HaltReason.EBREAK


@dataclass
class ExplorationResult:
    """All paths found plus exploration statistics."""

    paths: list[PathInfo] = field(default_factory=list)
    sat_checks: int = 0
    unsat_checks: int = 0
    total_instructions: int = 0
    wall_time: float = 0.0
    solver_time: float = 0.0
    truncated: bool = False
    #: PCs of symbolic branches seen during exploration (branch coverage).
    covered_branches: set = field(default_factory=set)

    @property
    def num_paths(self) -> int:
        return len(self.paths)

    @property
    def assertion_failures(self) -> list[PathInfo]:
        return [p for p in self.paths if p.is_assertion_failure]

    @property
    def exit_codes(self) -> set[int]:
        return {p.exit_code for p in self.paths if p.exit_code is not None}

    def summary(self) -> str:
        return (
            f"{self.num_paths} paths "
            f"({len(self.assertion_failures)} assertion failures), "
            f"{self.sat_checks + self.unsat_checks} solver queries "
            f"({self.sat_checks} sat / {self.unsat_checks} unsat, "
            f"{self.solver_time:.2f}s in solver), "
            f"{self.total_instructions} instructions, "
            f"{self.wall_time:.2f}s"
        )


class Explorer:
    """Drives an executor through all feasible paths of the SUT."""

    def __init__(
        self,
        executor,
        solver: Optional[Solver] = None,
        strategy: str = "dfs",
        max_paths: int = 1_000_000,
        seed: int = 0,
    ):
        self.executor = executor
        self.solver = solver if solver is not None else Solver()
        self.strategy_name = strategy
        self.max_paths = max_paths
        self.seed = seed

    def explore(self) -> ExplorationResult:
        """Run the full exploration; returns all discovered paths."""
        result = ExplorationResult()
        start = time.perf_counter()
        worklist: Strategy = make_strategy(self.strategy_name, self.seed)
        worklist.push((InputAssignment(), 0))
        while worklist and result.num_paths < self.max_paths:
            assignment, bound = worklist.pop()
            run = self.executor.execute(assignment)
            self._record_path(result, run)
            self._expand(run, bound, worklist, result)
        result.truncated = bool(worklist)
        result.wall_time = time.perf_counter() - start
        return result

    # ------------------------------------------------------------------

    def _record_path(self, result: ExplorationResult, run: RunResult) -> None:
        result.total_instructions += run.instret
        result.paths.append(
            PathInfo(
                index=len(result.paths),
                halt_reason=run.halt_reason,
                exit_code=run.exit_code,
                instret=run.instret,
                trace_length=len(run.trace),
                assignment=run.assignment,
                stdout=run.stdout,
                final_pc=run.final_pc,
            )
        )

    def _expand(
        self,
        run: RunResult,
        bound: int,
        worklist: Strategy,
        result: ExplorationResult,
    ) -> None:
        """Generate flipped-branch children of a completed run.

        Children are pushed shallow-to-deep, so a LIFO worklist (DFS)
        explores the deepest unexplored branch first — the classic
        depth-first concolic schedule.  ``bound`` prevents re-flipping
        decisions that an ancestor already enumerated.
        """
        records = run.trace.records
        conditions = run.trace.conditions()
        variables = self.executor.input_variables()
        for record in records:
            if record.flippable:
                result.covered_branches.add(record.pc)
        for index in range(bound, len(records)):
            record = records[index]
            if not record.flippable:
                continue
            query = conditions[:index] + [record.negated()]
            check_start = time.perf_counter()
            verdict = self.solver.check(query)
            result.solver_time += time.perf_counter() - check_start
            if verdict is Result.SAT:
                result.sat_checks += 1
                model = self.solver.model()
                new_assignment = run.assignment.derive(model, variables)
                worklist.push((new_assignment, index + 1))
            else:
                result.unsat_checks += 1
