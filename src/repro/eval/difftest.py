"""Differential testing of hand-written lifters against the formal spec.

The paper's Sect. V-A bugs were found by comparing engines on real
programs; this module automates the stronger version the related-work
section calls for ("few existing approaches to testing the correctness
of binary lifters"): single-instruction differential testing of an
IR-based engine against the specification-derived concrete interpreter.

For a stream of random instructions and random machine states, the
instruction is executed by (a) the concrete interpreter — whose only
source of semantics is the formal specification — and (b) the IR engine
under test.  Register-state or PC divergence is a lifter bug.  Running
this against the five seeded angr bugs rediscovers each of them; running
it against the fixed lifters yields zero divergences.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..asm.encoder import encode_instruction
from ..concrete.interpreter import ConcreteInterpreter
from ..core.state import InputAssignment
from ..core.symvalue import SymValue
from ..loader.image import Image
from ..spec.isa import ISA, rv32im

__all__ = [
    "Divergence",
    "random_instruction",
    "difftest_engine",
    "bug_classes_for",
    "BUG_MNEMONIC_CLASSES",
]

_ENTRY = 0x0001_0000
_DATA = 0x0002_0000
_DATA_SIZE = 256

#: Mnemonics excluded from random generation (environment interaction).
_EXCLUDED = frozenset({"ecall", "ebreak", "fence"})

#: Which mnemonics each of the five angr bugs can affect — used to map
#: observed divergences back to bug classes.
BUG_MNEMONIC_CLASSES = {
    "sra-logical": frozenset({"sra", "srai"}),
    "shift-amount-index": frozenset({"sll", "srl", "sra"}),
    "load-extension": frozenset({"lb", "lbu", "lh", "lhu"}),
    "shamt-signed": frozenset({"slli", "srli", "srai"}),
    "signed-compare-unsigned": frozenset({"slt", "slti", "blt", "bge"}),
}


@dataclass(frozen=True)
class Divergence:
    """One observed disagreement between spec and lifter."""

    mnemonic: str
    word: int
    register: Optional[int]  # diverging register, or None for PC
    expected: int
    actual: int
    seed_state: int

    def describe(self) -> str:
        where = "pc" if self.register is None else f"x{self.register}"
        return (
            f"{self.mnemonic} ({self.word:#010x}): {where} expected "
            f"{self.expected:#010x}, lifter produced {self.actual:#010x}"
        )


def random_instruction(rng: random.Random, isa: ISA) -> tuple[str, int]:
    """Generate a random well-formed instruction word."""
    names = [n for n in isa.decoder.names() if n not in _EXCLUDED]
    name = rng.choice(names)
    encoding = isa.decoder.by_name(name)
    rd = rng.randrange(32)
    rs1 = rng.randrange(32)
    rs2 = rng.randrange(32)
    rs3 = rng.randrange(32)
    fmt = encoding.fmt
    if fmt == "load":
        # Bias memory operands into the initialized data window so load
        # divergences (e.g. the load-extension bug) trigger reliably.
        imm = rng.randrange(0, _DATA_SIZE - 8)
    elif fmt == "i":
        imm = rng.randrange(-2048, 2048)
    elif fmt == "shift":
        imm = rng.randrange(32)
    elif fmt == "s":
        imm = rng.randrange(0, _DATA_SIZE - 8)
    elif fmt == "b":
        imm = rng.randrange(-2048, 2048) * 2
    elif fmt == "u":
        imm = rng.randrange(1 << 20)
    elif fmt == "j":
        imm = rng.randrange(-4096, 4096) * 2
    else:
        imm = 0
    word = encode_instruction(encoding, rd=rd, rs1=rs1, rs2=rs2, rs3=rs3, imm=imm)
    return name, word


def _random_state(rng: random.Random) -> tuple[list[int], bytes]:
    """Random register file + data-region contents.

    Register values are biased so that memory operands usually land in
    the data region (loads/stores see interesting bytes) while still
    exercising wide arithmetic values.
    """
    regs = [0] * 32
    for i in range(1, 32):
        choice = rng.random()
        if choice < 0.5:
            regs[i] = _DATA + rng.randrange(_DATA_SIZE - 8)
        elif choice < 0.75:
            regs[i] = rng.randrange(1 << 32)
        else:
            regs[i] = rng.choice(
                [0, 1, 0x7FFFFFFF, 0x80000000, 0xFFFFFFFF, 31, 32, 0xFF]
            )
    data = bytes(rng.randrange(256) for _ in range(_DATA_SIZE))
    return regs, data


def _run_spec(
    isa: ISA, word: int, regs: list[int], data: bytes
) -> tuple[list[int], int]:
    interp = ConcreteInterpreter(isa)
    interp.memory.write(_ENTRY, word, 32)
    interp.memory.write_bytes(_DATA, data)
    interp.hart.pc = _ENTRY
    for i in range(1, 32):
        interp.hart.regs.write(i, regs[i])
    interp.step()
    return [interp.hart.regs.read(i) for i in range(32)], interp.hart.pc


def _run_engine(
    engine_factory: Callable, isa: ISA, word: int, regs: list[int], data: bytes
) -> tuple[list[int], int]:
    image = Image(entry=_ENTRY)
    image.add_segment(_ENTRY, word.to_bytes(4, "little"))
    image.add_segment(_DATA, data)
    engine = engine_factory(isa, image)
    engine._reset(InputAssignment())
    for i in range(1, 32):
        engine.write_reg(i, SymValue(regs[i], 32))
    engine.step()
    return [engine.read_reg(i).concrete for i in range(32)], engine.pc


def difftest_engine(
    engine_factory: Callable,
    iterations: int = 500,
    seed: int = 0,
    isa: Optional[ISA] = None,
) -> list[Divergence]:
    """Random single-instruction differential test spec-vs-engine."""
    isa = isa if isa is not None else rv32im()
    rng = random.Random(seed)
    divergences: list[Divergence] = []
    for iteration in range(iterations):
        name, word = random_instruction(rng, isa)
        regs, data = _random_state(rng)
        expected_regs, expected_pc = _run_spec(isa, word, regs, data)
        actual_regs, actual_pc = _run_engine(engine_factory, isa, word, regs, data)
        for i in range(32):
            if expected_regs[i] != actual_regs[i]:
                divergences.append(
                    Divergence(name, word, i, expected_regs[i], actual_regs[i], seed)
                )
                break
        else:
            if expected_pc != actual_pc:
                divergences.append(
                    Divergence(name, word, None, expected_pc, actual_pc, seed)
                )
    return divergences


def bug_classes_for(divergences: list[Divergence]) -> set[str]:
    """Map observed divergent mnemonics back to bug classes."""
    mnemonics = {d.mnemonic for d in divergences}
    return {
        bug
        for bug, affected in BUG_MNEMONIC_CLASSES.items()
        if mnemonics & affected
    }
