"""Table I reproduction: execution paths found by each SE engine.

Runs the five evaluation programs through angr-like (buggy and fixed),
BINSEC-like, SymEx-VP-like and BinSym, and prints the path-count matrix.
The paper's accuracy claim is the *pattern*: the buggy angr lifter
misses paths on ``base64-encode`` and ``uri-parser`` (marked †), while
all other engines (and fixed angr) agree everywhere.

Run as a module::

    python -m repro.eval.table1 [--scale N | --paper-scale] [--quick]
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Optional

from ..spec.isa import rv32im
from .engines import explore_with
from .report import format_table
from .workloads import TABLE1_WORKLOADS, WORKLOADS

__all__ = ["Table1Row", "run_table1", "render_table1", "main"]

#: Engine columns in the paper's order.
_COLUMNS = ("angr-buggy", "binsec", "symex-vp", "binsym")
_COLUMN_LABELS = {
    "angr-buggy": "angr",
    "binsec": "BINSEC",
    "symex-vp": "SymEx-VP",
    "binsym": "BinSym",
}


@dataclass
class Table1Row:
    benchmark: str
    scale: int
    counts: dict[str, int] = field(default_factory=dict)
    times: dict[str, float] = field(default_factory=dict)

    @property
    def reference_count(self) -> int:
        """The count the correct engines agree on (BinSym's)."""
        return self.counts["binsym"]

    def angr_misses_paths(self) -> bool:
        return self.counts["angr-buggy"] < self.reference_count


def run_table1(
    scale: Optional[int] = None,
    paper_scale: bool = False,
    benchmarks=TABLE1_WORKLOADS,
    engines=_COLUMNS,
) -> list[Table1Row]:
    """Execute the Table I experiment and return one row per benchmark."""
    isa = rv32im()
    rows = []
    for name in benchmarks:
        workload = WORKLOADS[name]
        effective_scale = (
            workload.paper_scale if paper_scale else (scale or workload.default_scale)
        )
        image = workload.image(effective_scale)
        row = Table1Row(name, effective_scale)
        for key in engines:
            result = explore_with(key, image, isa=isa)
            row.counts[key] = result.num_paths
            row.times[key] = result.wall_time
        rows.append(row)
    return rows


def render_table1(rows: list[Table1Row]) -> str:
    """Render the rows in the shape of the paper's Table I."""
    headers = ["Benchmark", "scale"] + [
        _COLUMN_LABELS.get(c, c) for c in rows[0].counts
    ]
    body = []
    for row in rows:
        cells: list[object] = [row.benchmark, row.scale]
        for key, count in row.counts.items():
            dagger = "†" if key == "angr-buggy" and row.angr_misses_paths() else ""
            cells.append(f"{count}{dagger}")
        body.append(cells)
    note = (
        "\n† angr (with the five historical RISC-V lifter bugs) misses"
        " feasible paths;\n  all other engines agree on every benchmark"
        " (paper Table I pattern)."
    )
    return (
        format_table(
            headers,
            body,
            title="Table I — execution paths found by different SE engines",
        )
        + note
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=None,
                        help="override workload scale (symbolic input size)")
    parser.add_argument("--paper-scale", action="store_true",
                        help="use the paper's input sizes (slow in pure Python)")
    parser.add_argument("--benchmark", action="append", default=None,
                        help="run only the given benchmark(s)")
    args = parser.parse_args(argv)
    benchmarks = tuple(args.benchmark) if args.benchmark else TABLE1_WORKLOADS
    rows = run_table1(
        scale=args.scale, paper_scale=args.paper_scale, benchmarks=benchmarks
    )
    print(render_table1(rows))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
