"""Plain-text tables and log-scale bar charts for the experiment drivers.

matplotlib is not available offline, so Fig. 6 is rendered as an ASCII
grouped bar chart with a logarithmic axis plus a CSV dump suitable for
external plotting.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

__all__ = ["format_table", "log_bar_chart", "csv_lines"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned plain-text table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append(
            "  ".join(
                cell.rjust(widths[i]) if i else cell.ljust(widths[i])
                for i, cell in enumerate(row)
            )
        )
    return "\n".join(lines)


def log_bar_chart(
    groups: Sequence[str],
    series: dict[str, Sequence[float]],
    unit: str = "s",
    width: int = 50,
    title: Optional[str] = None,
) -> str:
    """ASCII grouped bar chart with a logarithmic value axis.

    ``groups`` are the x-axis categories (benchmarks); ``series`` maps a
    series label (engine) to one value per group.
    """
    all_values = [v for values in series.values() for v in values if v > 0]
    if not all_values:
        return "(no data)"
    low = min(all_values)
    high = max(all_values)
    log_low = math.log10(low) - 0.05
    log_high = math.log10(high) + 0.05
    span = max(log_high - log_low, 1e-9)

    def bar(value: float) -> str:
        if value <= 0:
            return ""
        frac = (math.log10(value) - log_low) / span
        return "#" * max(1, int(frac * width))

    label_width = max(len(label) for label in series)
    lines = []
    if title:
        lines.append(title)
    lines.append(f"(log scale, {low:.3g}{unit} .. {high:.3g}{unit})")
    for g, group in enumerate(groups):
        lines.append(f"{group}:")
        for label, values in series.items():
            value = values[g]
            lines.append(
                f"  {label.ljust(label_width)} |{bar(value)} {value:.3g}{unit}"
            )
    return "\n".join(lines)


def csv_lines(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> list[str]:
    """CSV rendering (no quoting needed for our numeric tables)."""
    out = [",".join(str(h) for h in headers)]
    for row in rows:
        out.append(",".join(str(c) for c in row))
    return out
