"""The five angr lifter bugs, the Fig. 5 FP/FN case and the DIVU edge.

Three experiments from the paper's accuracy story:

1. **Five-bug witnesses** — for every historical angr RISC-V lifter bug
   (Sect. V-A enumeration) a minimal witness program whose final state
   differs between the formal specification and the buggy lifter.
2. **Fig. 5** — ``parse_word``: under the shamt-signed bug, angr reports
   a *false positive* (spurious assertion failure on the ``x == 1``
   path) and a *false negative* (misses the real failure on the other
   path).  Fixed engines report exactly the real failure.
3. **Fig. 2 / intro** — the ``DIVU`` division-by-zero edge: the "dead"
   ``fail`` branch of ``foo()`` is reachable with ``y == 0`` because
   RISC-V division by zero returns all-ones.

Run as a module: ``python -m repro.eval.bugs``.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Optional

from ..asm import assemble
from ..baselines.vexir.lifter import (
    BUG_DESCRIPTIONS,
    FIVE_ANGR_BUGS,
)
from ..spec.isa import rv32im
from .engines import explore_with
from .report import format_table
from .workloads import divu_check_source, parse_word_source

__all__ = [
    "BugWitness",
    "BUG_WITNESSES",
    "run_bug_witnesses",
    "Fig5Outcome",
    "run_fig5",
    "run_divu_edgecase",
    "main",
]

_A0 = 10  # argument register index


@dataclass(frozen=True)
class BugWitness:
    """A minimal program exposing one lifter bug through its exit code."""

    bug: str
    source: str
    correct_exit: int

    def description(self) -> str:
        return BUG_DESCRIPTIONS[self.bug]


#: The witness catalogue.  Every program moves the affected result into
#: a0 and exits, so a concrete single-path run exposes the divergence.
BUG_WITNESSES = (
    BugWitness(
        "sra-logical",
        """\
_start:
    li t0, -8
    srai a0, t0, 2       # arithmetic: 0xfffffffe; logical: 0x3ffffffe
    li a7, 93
    ecall
""",
        correct_exit=0xFFFFFFFE,
    ),
    BugWitness(
        "shift-amount-index",
        """\
_start:
    li t0, 1
    li t2, 1             # t2 is x7: value 1, index 7
    sll a0, t0, t2       # correct: 1<<1 = 2; buggy: 1<<7 = 128
    li a7, 93
    ecall
""",
        correct_exit=2,
    ),
    BugWitness(
        "load-extension",
        """\
_start:
    li t0, 0x20000
    li t1, 0x80
    sb t1, 0(t0)
    lbu a0, 0(t0)        # correct: 0x80; buggy sign-extends
    srli a0, a0, 8       # correct: 0; buggy: 0xffffff
    andi a0, a0, 255
    li a7, 93
    ecall
""",
        correct_exit=0,
    ),
    BugWitness(
        "shamt-signed",
        """\
_start:
    li t0, 1
    slli t1, t0, 31      # correct: 0x80000000; buggy (shift -1): 0
    srli a0, t1, 31      # correct: 1; buggy: 0
    li a7, 93
    ecall
""",
        correct_exit=1,
    ),
    BugWitness(
        "signed-compare-unsigned",
        """\
_start:
    li t0, -1
    slti a0, t0, 0       # correct (signed): 1; buggy (unsigned): 0
    li a7, 93
    ecall
""",
        correct_exit=1,
    ),
)


@dataclass
class WitnessOutcome:
    bug: str
    description: str
    correct_exit: int
    spec_exit: int
    fixed_lifter_exit: int
    buggy_lifter_exit: int

    @property
    def bug_reproduced(self) -> bool:
        return (
            self.spec_exit == self.correct_exit
            and self.fixed_lifter_exit == self.correct_exit
            and self.buggy_lifter_exit != self.correct_exit
        )


def run_bug_witnesses() -> list[WitnessOutcome]:
    """Execute each witness on spec / fixed angr / single-bug angr."""
    from ..baselines.vexir import VexEngine
    from ..concrete import ConcreteInterpreter
    from ..core import Explorer

    isa = rv32im()
    outcomes = []
    for witness in BUG_WITNESSES:
        image = assemble(witness.source)
        spec = ConcreteInterpreter(isa)
        spec.load_image(image)
        spec_exit = spec.run().exit_code

        fixed = Explorer(VexEngine(isa, image)).explore()
        buggy = Explorer(
            VexEngine(isa, image, bugs=frozenset({witness.bug}))
        ).explore()
        outcomes.append(
            WitnessOutcome(
                bug=witness.bug,
                description=witness.description(),
                correct_exit=witness.correct_exit,
                spec_exit=spec_exit,
                fixed_lifter_exit=fixed.paths[0].exit_code,
                buggy_lifter_exit=buggy.paths[0].exit_code,
            )
        )
    return outcomes


@dataclass
class Fig5Outcome:
    """Assertion-failure classification for one engine on parse_word."""

    engine: str
    eq_assert_failures: int  # "mask == 0x80000000" site (spurious if > 0)
    ne_assert_failures: int  # "mask != 0x80000000" site (the real bug)
    paths: int

    @property
    def false_positive(self) -> bool:
        return self.eq_assert_failures > 0

    @property
    def false_negative(self) -> bool:
        return self.ne_assert_failures == 0


def run_fig5(engines=("binsym", "binsec", "symex-vp", "angr", "angr-buggy")):
    """Run the Fig. 5 program with a symbolic argument on each engine."""
    image = assemble(parse_word_source())
    eq_site = image.symbol("assert_eq_failed")
    ne_site = image.symbol("assert_ne_failed")
    outcomes = []
    for key in engines:
        result = explore_with(key, image, symbolic_registers=(_A0,))
        eq_failures = sum(
            1 for p in result.assertion_failures if p.final_pc == eq_site
        )
        ne_failures = sum(
            1 for p in result.assertion_failures if p.final_pc == ne_site
        )
        outcomes.append(Fig5Outcome(key, eq_failures, ne_failures, result.num_paths))
    return outcomes


def run_divu_edgecase(engine: str = "binsym"):
    """Fig. 2 / intro: prove the DIVU fail branch is reachable (y == 0)."""
    image = assemble(divu_check_source(), entry_symbol="foo")
    # x in a0, y in a1 — both symbolic.
    result = explore_with(engine, image, symbolic_registers=(10, 11))
    failures = result.assertion_failures
    witness: Optional[dict] = None
    if failures:
        assignment = failures[0].assignment
        values = {
            str(var.payload): value for var, value in assignment.values.items()
        }
        witness = {
            "x": values.get("reg_10", 0),
            "y": values.get("reg_11", 0),
        }
    return result, witness


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.parse_args(argv)

    print("=== Five historical angr RISC-V lifter bugs (Sect. V-A) ===")
    rows = []
    for outcome in run_bug_witnesses():
        rows.append(
            [
                outcome.bug,
                f"{outcome.correct_exit:#x}",
                f"{outcome.spec_exit:#x}",
                f"{outcome.fixed_lifter_exit:#x}",
                f"{outcome.buggy_lifter_exit:#x}",
                "reproduced" if outcome.bug_reproduced else "NOT reproduced",
            ]
        )
    print(
        format_table(
            ["bug", "correct", "spec", "fixed angr", "buggy angr", "status"],
            rows,
        )
    )

    print("\n=== Fig. 5: parse_word false positive / false negative ===")
    rows = []
    for outcome in run_fig5():
        rows.append(
            [
                outcome.engine,
                outcome.paths,
                outcome.eq_assert_failures,
                outcome.ne_assert_failures,
                "FP" if outcome.false_positive else "-",
                "FN" if outcome.false_negative else "-",
            ]
        )
    print(
        format_table(
            ["engine", "paths", "eq-site fails", "ne-site fails", "FP?", "FN?"],
            rows,
        )
    )

    print("\n=== Fig. 2 / intro: DIVU division-by-zero edge case ===")
    result, witness = run_divu_edgecase()
    print(f"paths: {result.num_paths}, failing paths: "
          f"{len(result.assertion_failures)}")
    if witness is not None:
        print(
            f"fail branch reachable with x={witness['x']:#x}, "
            f"y={witness['y']:#x} (division by zero yields all-ones)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
