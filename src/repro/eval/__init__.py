"""Experiment drivers reproducing the paper's evaluation artifacts.

* :mod:`repro.eval.workloads` — the five Table I programs (+ Fig. 2/5)
* :mod:`repro.eval.table1` — Table I (path counts per engine)
* :mod:`repro.eval.fig6` — Fig. 6 (wall-clock comparison, log scale)
* :mod:`repro.eval.bugs` — five-bug witnesses, Fig. 5 FP/FN, DIVU edge
* :mod:`repro.eval.difftest` — differential lifter testing vs the spec
* :mod:`repro.eval.loc_report` — LOC split (Sect. III-B claim)
"""

from .engines import ENGINE_ORDER, explore_with, make_engine
from .workloads import TABLE1_WORKLOADS, WORKLOADS, build

__all__ = [
    "ENGINE_ORDER",
    "explore_with",
    "make_engine",
    "WORKLOADS",
    "TABLE1_WORKLOADS",
    "build",
]
