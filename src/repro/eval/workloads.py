"""The evaluation workloads (paper Sect. V + Figs. 2 and 5).

The paper evaluates on three RIOT OS modules (``base64-encode``,
``clif-parser``, ``uri-parser``) and two synthetic sort benchmarks
(``bubble-sort``, ``insertion-sort``), compiled for RV32 with a fixed
amount of symbolic input.  The RIOT sources and the GCC cross toolchain
are not available offline, so the workloads are re-written in RV32
assembly with the *same branching structure* (see DESIGN.md):

* the sorts perform data-dependent compare-exchanges, so ``n`` symbolic
  elements yield exactly ``n!`` feasible paths (720 = 6! and 5040 = 7!
  in Table I — the paper's sizes are recovered with ``scale=6``/``7``);
* ``base64-encode`` classifies each 6-bit group with a 4-comparison
  chain (5 outcomes per full output character); with 4 symbolic input
  bytes this yields 5^5 * 2 = 6250 paths — exactly the paper's count;
* ``uri-parser`` validates characters with *signed* comparisons over
  sign-extended ``char`` loads (``lb``), the combination angr's lifter
  bugs #3/#5 mistranslate;
* ``clif-parser`` (CoRE link-format) branches only on equality against
  delimiters, which none of the five bugs affects — the workload where
  Table I shows identical counts for every engine.

Every workload obtains its symbolic buffer via the ``make_symbolic``
ecall and exits through the ``exit`` ecall, so all engines see identical
binaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..asm import assemble
from ..loader.image import Image

__all__ = [
    "Workload",
    "WORKLOADS",
    "TABLE1_WORKLOADS",
    "build",
    "bubble_sort_source",
    "insertion_sort_source",
    "base64_encode_source",
    "uri_parser_source",
    "clif_parser_source",
    "parse_word_source",
    "divu_check_source",
]

_BUF = 0x0002_0000

_PROLOGUE = """\
_start:
    li a0, {buf}
    li a1, {length}
    li a7, 1337
    ecall                   # make_symbolic(buf, length)
"""

_EPILOGUE = """\
exit_ok:
    li a7, 93
    li a0, 0
    ecall
"""


def bubble_sort_source(n: int) -> str:
    """Full bubble sort (no early exit) over n symbolic bytes."""
    return (
        _PROLOGUE.format(buf=_BUF, length=n)
        + f"""\
    li s0, {_BUF}           # base
    li s1, {n}              # n
    li t0, 0                # i
outer:
    addi t6, s1, -1
    bge t0, t6, exit_ok     # i >= n-1 (concrete)
    li t1, 0                # j
inner:
    sub t5, s1, t0
    addi t5, t5, -1
    bge t1, t5, next_i      # j >= n-1-i (concrete)
    add t2, s0, t1
    lbu t3, 0(t2)           # a[j]
    lbu t4, 1(t2)           # a[j+1]
    bgeu t4, t3, no_swap    # symbolic compare-exchange
    sb t4, 0(t2)
    sb t3, 1(t2)
no_swap:
    addi t1, t1, 1
    j inner
next_i:
    addi t0, t0, 1
    j outer
"""
        + _EPILOGUE
    )


def insertion_sort_source(n: int) -> str:
    """Textbook insertion sort over n symbolic bytes."""
    return (
        _PROLOGUE.format(buf=_BUF, length=n)
        + f"""\
    li s0, {_BUF}
    li s1, {n}
    li t0, 1                # i
outer:
    bge t0, s1, exit_ok     # concrete
    mv t1, t0               # j
inner:
    beqz t1, next_i         # concrete
    add t2, s0, t1
    lbu t3, -1(t2)          # a[j-1]
    lbu t4, 0(t2)           # a[j]
    bgeu t4, t3, next_i     # symbolic: stop when a[j] >= a[j-1]
    sb t4, -1(t2)
    sb t3, 0(t2)
    addi t1, t1, -1
    j inner
next_i:
    addi t0, t0, 1
    j outer
"""
        + _EPILOGUE
    )


def base64_encode_source(k: int) -> str:
    """Base64-encode k symbolic bytes with a comparison-chain alphabet.

    Each emitted character classifies its 6-bit group through the chain
    ``c < 26 / c < 52 / c < 62 / c == 62 / else`` (5 outcomes), matching
    the branching structure of a table-free embedded encoder.  Padding
    groups emit '=' directly.
    """
    out_buf = _BUF + 0x100
    return (
        _PROLOGUE.format(buf=_BUF, length=k)
        + f"""\
    li s0, {_BUF}           # in
    li s1, {k}              # len
    li s2, {out_buf}        # out
    li s3, 0                # consumed
group:
    sub t0, s1, s3
    beqz t0, exit_ok        # all input consumed (concrete)
    li t1, 3
    bltu t0, t1, tail       # partial group? (concrete)
    # full 3-byte group
    add t2, s0, s3
    lbu a1, 0(t2)
    lbu a2, 1(t2)
    lbu a3, 2(t2)
    srli a0, a1, 2          # c0 = b0 >> 2
    jal ra, classify
    andi a0, a1, 3
    slli a0, a0, 4
    srli t3, a2, 4
    or a0, a0, t3           # c1 = (b0&3)<<4 | b1>>4
    jal ra, classify
    andi a0, a2, 15
    slli a0, a0, 2
    srli t3, a3, 6
    or a0, a0, t3           # c2 = (b1&15)<<2 | b2>>6
    jal ra, classify
    andi a0, a3, 63         # c3 = b2 & 63
    jal ra, classify
    addi s3, s3, 3
    j group
tail:
    add t2, s0, s3
    lbu a1, 0(t2)
    srli a0, a1, 2          # c0 = b >> 2
    jal ra, classify
    li t1, 1
    beq t0, t1, tail1       # concrete: 1 or 2 bytes left
    # two bytes left
    lbu a2, 1(t2)
    andi a0, a1, 3
    slli a0, a0, 4
    srli t3, a2, 4
    or a0, a0, t3
    jal ra, classify
    andi a0, a2, 15
    slli a0, a0, 2          # c2 = (b1&15)<<2
    jal ra, classify
    li a0, '='
    jal ra, emit
    j exit_ok
tail1:
    andi a0, a1, 3
    slli a0, a0, 4          # c1 = (b&3)<<4
    jal ra, classify
    li a0, '='
    jal ra, emit
    li a0, '='
    jal ra, emit
    j exit_ok

# classify(a0: 6-bit group) -> emit alphabet character
classify:
    li t4, 26
    bgeu a0, t4, cls_lower  # symbolic
    addi a0, a0, 'A'
    j emit
cls_lower:
    li t4, 52
    bgeu a0, t4, cls_digit  # symbolic
    addi a0, a0, 71         # 'a' - 26
    j emit
cls_digit:
    li t4, 62
    bgeu a0, t4, cls_plus   # symbolic
    addi a0, a0, -4         # '0' - 52
    j emit
cls_plus:
    li t4, 62
    bne a0, t4, cls_slash   # symbolic
    li a0, '+'
    j emit
cls_slash:
    li a0, '/'
emit:
    sb a0, 0(s2)
    addi s2, s2, 1
    ret
"""
        + _EPILOGUE
    )


def uri_parser_source(n: int) -> str:
    """Validate a ``scheme:`` prefix over n *signed char* bytes.

    Mirrors the character-class checks of an embedded URI parser: each
    character is loaded with ``lb`` (C ``char`` is signed on RISC-V) and
    range-checked with *signed* comparisons — the code shape angr's
    signed-comparison and load-extension lifter bugs mistranslate.
    Exit codes encode the accepting/rejecting state.
    """
    return (
        _PROLOGUE.format(buf=_BUF, length=n)
        + f"""\
    li s0, {_BUF}
    li s1, {n}
    # first character must be ASCII ((signed char)c >= 0) and lowercase
    lb t0, 0(s0)
    bltz t0, reject_bin     # symbolic, signed: non-ASCII byte
    li t1, 'a'
    blt t0, t1, reject      # symbolic, signed
    li t1, 'z'
    blt t1, t0, reject      # symbolic, signed
    li s2, 1                # index
scan:
    bge s2, s1, reject      # concrete: no colon found
    add t2, s0, s2
    lb t0, 0(t2)
    bltz t0, reject_bin     # symbolic, signed: non-ASCII byte
    li t1, ':'
    beq t0, t1, colon       # symbolic
    li t1, 'a'
    blt t0, t1, reject      # symbolic, signed
    li t1, 'z'
    blt t1, t0, reject      # symbolic, signed
    addi s2, s2, 1
    j scan
colon:
    # accept: scheme parsed; remaining bytes are opaque
    j exit_ok
reject_bin:
    li a7, 93
    li a0, 2
    ecall
reject:
    li a7, 93
    li a0, 1
    ecall
"""
        + _EPILOGUE
    )


def clif_parser_source(n: int) -> str:
    """CoRE link-format parser skeleton over n symbolic bytes.

    Recognizes ``<path>`` followed by ``;attr`` segments using only
    equality tests against delimiters — the branch structure on which
    Table I reports identical path counts for every engine.
    """
    return (
        _PROLOGUE.format(buf=_BUF, length=n)
        + f"""\
    li s0, {_BUF}
    li s1, {n}
    lbu t0, 0(s0)
    li t1, '<'
    bne t0, t1, reject      # symbolic: must start with '<'
    li s2, 1
path:
    bge s2, s1, reject      # concrete: unterminated path
    add t2, s0, s2
    lbu t0, 0(t2)
    addi s2, s2, 1
    li t1, '>'
    beq t0, t1, attrs       # symbolic: path ends at '>'
    j path
attrs:
    bge s2, s1, exit_ok     # concrete: end of input, accept
    add t2, s0, s2
    lbu t0, 0(t2)
    addi s2, s2, 1
    li t1, ';'
    beq t0, t1, attrs       # symbolic: attribute separator
    li t1, ','
    beq t0, t1, next_link   # symbolic: next link
    j attrs                 # attribute payload byte
next_link:
    bge s2, s1, reject      # concrete: dangling comma
    add t2, s0, s2
    lbu t0, 0(t2)
    addi s2, s2, 1
    li t1, '<'
    bne t0, t1, reject      # symbolic
    j path
reject:
    li a7, 93
    li a0, 1
    ecall
"""
        + _EPILOGUE
    )


def parse_word_source() -> str:
    """The Fig. 5 program: FP + FN under angr's shamt-signed bug.

    ``x`` arrives in a0 (pre-marked symbolic by the harness).  The
    first ``ebreak`` is the assertion ``mask == 0x80000000`` (spurious
    failure = false positive under the bug); the second is
    ``mask != 0x80000000`` (real failure the buggy engine misses =
    false negative).  Symbol names mark the two assertion sites.
    """
    return """\
_start:
    slli t0, a0, 31         # mask = x << 31 (I-type shift, shamt = 31)
    li t1, 1
    bne a0, t1, else_branch # if (x == 1)
    li t2, 0x80000
    slli t2, t2, 12         # 0x80000000
    beq t0, t2, out         # assert(mask == 0x80000000)
assert_eq_failed:
    ebreak
else_branch:
    li t2, 0x80000
    slli t2, t2, 12
    bne t0, t2, out         # assert(mask != 0x80000000)
assert_ne_failed:
    ebreak
out:
    li a7, 93
    li a0, 0
    ecall
"""


def divu_check_source() -> str:
    """The paper's intro example (Fig. 2): DIVU division-by-zero edge.

    ``x`` in a0 and ``y`` in a1 are symbolic; the ``fail`` branch is
    reachable *only* because RISC-V defines division by zero to return
    all-ones (z = 0xffffffff > x).

    The inputs are masked to 8 bits: symbolic 32-bit division bit-blasts
    to a ~40k-clause multiplier constraint that the pure-Python CDCL
    solver chews on for minutes, while the 8-bit domain exhibits the
    identical edge case in well under a second (see EXPERIMENTS.md).
    """
    return """\
foo:
    andi a0, a0, 255        # keep the solver demo small (see docstring)
    andi a1, a1, 255
    divu a1, a0, a1         # z = x / y  (all-ones when y == 0)
    bltu a0, a1, fail       # if (x < z) goto fail
    li a7, 93
    li a0, 0
    ecall
fail:
    ebreak
"""


@dataclass(frozen=True)
class Workload:
    """A named benchmark with a scale knob.

    ``default_scale`` keeps the pure-Python default runs quick;
    ``paper_scale`` recovers the paper's Table I configuration.
    ``expected_paths`` maps scale -> known-correct path count (None when
    the count is measured rather than derived).
    """

    name: str
    source_builder: Callable[[int], str]
    default_scale: int
    paper_scale: int
    expected_paths: Optional[Callable[[int], int]] = None
    #: Scale used by the Fig. 6 timing driver (enough work for the
    #: engine-overhead differences to dominate setup noise).
    fig6_scale: int = 0

    def __post_init__(self):
        if self.fig6_scale == 0:
            object.__setattr__(self, "fig6_scale", self.default_scale + 1)

    def source(self, scale: Optional[int] = None) -> str:
        return self.source_builder(scale or self.default_scale)

    def image(self, scale: Optional[int] = None) -> Image:
        return assemble(self.source(scale))


def _factorial(n: int) -> int:
    result = 1
    for i in range(2, n + 1):
        result *= i
    return result


def _base64_paths(k: int) -> int:
    """5 outcomes per full character; partial-group characters have
    fewer feasible classes (derivation in EXPERIMENTS.md).

    * one trailing byte: c0 spans all 64 values (5 classes), c1 is
      ``(b & 3) << 4`` in {0,16,32,48} — only the A-Z and a-z classes
      are reachable (2);
    * two trailing bytes: c0 and c1 span all values (5 each), c2 is
      ``(b1 & 15) << 2`` in {0,4,...,60} — A-Z, a-z and 0-9 reachable
      (3; 62 and 63 cannot be produced).
    """
    full_groups, rest = divmod(k, 3)
    paths = 5 ** (4 * full_groups)
    if rest == 1:
        paths *= 5 * 2
    elif rest == 2:
        paths *= 5 * 5 * 3
    return paths


WORKLOADS = {
    "bubble-sort": Workload(
        "bubble-sort", bubble_sort_source, default_scale=4, paper_scale=6,
        expected_paths=_factorial,
    ),
    "insertion-sort": Workload(
        "insertion-sort", insertion_sort_source, default_scale=4, paper_scale=7,
        expected_paths=_factorial,
    ),
    "base64-encode": Workload(
        "base64-encode", base64_encode_source, default_scale=1, paper_scale=4,
        expected_paths=_base64_paths,
    ),
    "uri-parser": Workload(
        "uri-parser", uri_parser_source, default_scale=3, paper_scale=6,
    ),
    "clif-parser": Workload(
        "clif-parser", clif_parser_source, default_scale=4, paper_scale=7,
    ),
}

#: Table I row order.
TABLE1_WORKLOADS = (
    "base64-encode",
    "bubble-sort",
    "clif-parser",
    "insertion-sort",
    "uri-parser",
)


def build(name: str, scale: Optional[int] = None) -> Image:
    """Assemble a workload by name at the given (or default) scale."""
    return WORKLOADS[name].image(scale)
