"""SMT query complexity across translation methodologies.

The paper's closing question (Sect. V-B): "we plan to expand on the
evaluation in future work by specifically investigating the impact of
formal ISA semantics on SMT query complexity."  This module provides
that measurement for the reproduction: it intercepts every solver query
an exploration issues and records structural metrics —

* number of conditions per query,
* total/distinct term-DAG nodes (after hash-consing),
* number of distinct input variables involved,
* number of variable-independent *slices* per query (the structure the
  preprocessing pipeline exploits),

then compares engines on the same workload.  Because all engines share
the term language and solver, differences are attributable to the
*translation* (spec-derived semantics vs per-IR lifting) — e.g. the
angr-like engine's claripy-style always-build-terms shows up directly
in node counts.

``--pipeline`` reports the query *answer* breakdown instead: per
engine, how many queries the SAT core solved vs how many the cache and
the word-level pipeline (slicing / rewriting / intervals) answered, and
how many raw CDCL solves that took.  With ``--jobs N`` the counters are
summed exactly across the worker processes.

Run as a module::

    python -m repro.eval.query_stats [--workload NAME] [--scale N]
    python -m repro.eval.query_stats --pipeline [--jobs N]
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Optional

from ..core.explorer import Explorer
from ..smt.preprocess import PreprocessConfig, slice_conditions
from ..smt.solver import Solver
from ..spec.isa import rv32im
from .engines import make_engine
from .report import format_table
from .workloads import WORKLOADS

__all__ = [
    "QueryStats",
    "RecordingSolver",
    "measure_engine",
    "compare_engines",
    "measure_pipeline",
    "compare_pipeline",
    "main",
]


@dataclass
class QueryStats:
    """Aggregate structural statistics over all queries of a run."""

    queries: int = 0
    total_conditions: int = 0
    total_nodes: int = 0
    max_nodes: int = 0
    total_variables: int = 0
    max_variables: int = 0
    total_slices: int = 0
    max_slices: int = 0

    def record(self, assumptions) -> None:
        nodes = 0
        variables = set()
        count = 0
        for term in assumptions:
            count += 1
            nodes += term.size()
            variables.update(term.variables())
        slices = len(slice_conditions([t for t in assumptions if not t.is_const]))
        self.queries += 1
        self.total_conditions += count
        self.total_nodes += nodes
        self.max_nodes = max(self.max_nodes, nodes)
        self.total_variables += len(variables)
        self.max_variables = max(self.max_variables, len(variables))
        self.total_slices += slices
        self.max_slices = max(self.max_slices, slices)

    @property
    def mean_conditions(self) -> float:
        return self.total_conditions / self.queries if self.queries else 0.0

    @property
    def mean_nodes(self) -> float:
        return self.total_nodes / self.queries if self.queries else 0.0

    @property
    def mean_variables(self) -> float:
        return self.total_variables / self.queries if self.queries else 0.0

    @property
    def mean_slices(self) -> float:
        return self.total_slices / self.queries if self.queries else 0.0


class RecordingSolver(Solver):
    """Solver facade that records per-query structural metrics."""

    def __init__(self) -> None:
        super().__init__()
        self.stats = QueryStats()

    def check(self, assumptions=()):
        assumptions = list(assumptions)
        self.stats.record(assumptions)
        return super().check(assumptions)


def measure_engine(
    key: str, workload: str, scale: Optional[int] = None
) -> tuple[QueryStats, int]:
    """Explore one workload with one engine, recording query metrics."""
    spec = WORKLOADS[workload]
    image = spec.image(scale or spec.default_scale)
    solver = RecordingSolver()
    engine = make_engine(key, rv32im(), image)
    result = Explorer(engine, solver=solver).explore()
    return solver.stats, result.num_paths


def compare_engines(
    workload: str,
    scale: Optional[int] = None,
    engines=("binsym", "binsec", "symex-vp", "angr"),
) -> dict[str, QueryStats]:
    """Per-engine query statistics on one workload."""
    out: dict[str, QueryStats] = {}
    for key in engines:
        stats, _paths = measure_engine(key, workload, scale)
        out[key] = stats
    return out


def render(comparison: dict[str, QueryStats], workload: str) -> str:
    rows = []
    for key, stats in comparison.items():
        rows.append(
            [
                key,
                stats.queries,
                f"{stats.mean_conditions:.1f}",
                f"{stats.mean_nodes:.1f}",
                stats.max_nodes,
                f"{stats.mean_variables:.1f}",
                f"{stats.mean_slices:.1f}",
            ]
        )
    return format_table(
        ["engine", "queries", "mean conds", "mean DAG nodes", "max nodes",
         "mean vars", "mean slices"],
        rows,
        title=f"SMT query complexity on {workload} "
              "(paper Sect. V-B future work)",
    )


def measure_pipeline(
    key: str,
    workload: str,
    scale: Optional[int] = None,
    jobs: int = 1,
    certify: bool = False,
    store_dir: Optional[str] = None,
) -> dict:
    """Explore one workload; return the query-answer breakdown.

    The returned dict separates, exactly (summed across workers when
    ``jobs > 1``): queries the SAT core solved, queries the cross-path
    cache answered, queries the preprocessing fast path answered, and
    the raw CDCL ``solve()`` calls behind the solved ones.  With
    ``certify`` the exploration runs in certify mode and the breakdown
    additionally reports the evidence-layer counters.  ``store_dir``
    attaches the persistent artifact store (``--store``), so the warm
    hit / quarantine / disabled columns show cross-run payoff.
    """
    spec = WORKLOADS[workload]
    image = spec.image(scale or spec.default_scale)
    engine = make_engine(key, rv32im(), image)
    preprocess = PreprocessConfig(certify=True) if certify else None
    result = Explorer(
        engine,
        jobs=jobs,
        use_cache=True,
        preprocess=preprocess,
        store_dir=store_dir,
    ).explore()
    return {
        "paths": result.num_paths,
        "solved": result.num_queries,
        "cache_hits": result.cache_hits,
        "fast_path": result.fast_path_answers,
        "sat_core_solves": result.sat_solves,
        "slices": result.solver_stats.get("slices", 0),
        "subsumption_hits": result.solver_stats.get("cache_subsumption_hits", 0),
        "unsat_cores": result.solver_stats.get("unsat_cores", 0),
        # Degradation accounting (the fault-tolerance contract): queries
        # the solver abandoned on budget exhaustion, and frontier items
        # abandoned after repeated worker deaths.  Both are zero in a
        # healthy unbudgeted run.
        "unknown_queries": result.unknown_queries,
        "incomplete_paths": result.incomplete_paths,
        "workers": result.workers,
        # Anytime layer (PR 9; all zero on a healthy unbudgeted run):
        # worker seats the heartbeat watchdog killed, memory-governor
        # degradation rungs applied, and whether a --deadline cut the
        # exploration short (its drained frontier is already counted in
        # incomplete_paths above).
        "hung_workers": result.hung_workers,
        "degradations": result.degradations,
        "deadline_expired": int(result.deadline_expired),
        # Snapshot layer (all zero for engines without snapshot support
        # or with --no-snapshots): how many runs resumed at their
        # divergence point, the prefix instructions that saved, and the
        # pool evictions that forced re-execution fallbacks.
        "resumed_runs": result.resumed_runs,
        "saved_instructions": result.saved_instructions,
        "pool_evictions": result.snapshot_stats.get("snap_pool_evictions", 0),
        # Superblock layer (all zero for engines without superblock
        # support or with --no-superblocks): block dispatches and the
        # deoptimizations back to the per-instruction path (fuel guards
        # plus self-modifying-code invalidations).
        "superblock_hits": result.superblock_stats.get("sb_hits", 0),
        "superblock_deopts": result.superblock_stats.get("sb_deopts", 0)
        + result.superblock_stats.get("sb_invalidations", 0),
        # Evidence layer (all zero unless certify mode is on): answers
        # certified (DRAT-checked UNSAT proofs plus re-evaluated SAT
        # models), paths whose certificates replayed identically under
        # the reference evaluator, and cache entries quarantined by a
        # failed verify-on-hit integrity check.
        "certified": result.solver_stats.get("certified_sat", 0)
        + result.solver_stats.get("certified_unsat", 0),
        "checked_paths": result.certified_paths,
        "quarantined": result.solver_stats.get("cache_quarantines", 0),
        "certify_failures": result.solver_stats.get("certify_failures", 0)
        + result.certificate_failures,
        # Persistent store tier (all zero without --store): verified
        # warm hits served from disk, files that failed verification
        # and were renamed aside, and processes whose store tier
        # disabled itself after an I/O failure.  On a healthy warm
        # start, warm hits land in "cache hits" attribution, so the
        # solved column drops while the totals stay conserved.
        "store_hits": result.store_hits,
        "store_quarantines": result.store_quarantines,
        "store_disabled": result.store_disabled,
    }


def compare_pipeline(
    workload: str,
    scale: Optional[int] = None,
    jobs: int = 1,
    engines=("binsym", "binsec", "symex-vp", "angr"),
    certify: bool = False,
    store_dir: Optional[str] = None,
) -> dict[str, dict]:
    return {
        key: measure_pipeline(key, workload, scale, jobs, certify, store_dir)
        for key in engines
    }


def render_pipeline(
    comparison: dict[str, dict], workload: str, certify: bool = False
) -> str:
    rows = []
    for key, stats in comparison.items():
        row = [
            key,
            stats["paths"],
            stats["solved"],
            stats["cache_hits"],
            stats["subsumption_hits"],
            stats["fast_path"],
            stats["sat_core_solves"],
            stats["unsat_cores"],
            stats["unknown_queries"],
            stats["slices"],
            stats["resumed_runs"],
            stats["saved_instructions"],
            stats["pool_evictions"],
            stats["superblock_hits"],
            stats["superblock_deopts"],
            stats["hung_workers"],
            stats["degradations"],
            stats["deadline_expired"],
            stats["store_hits"],
            stats["store_quarantines"],
            stats["store_disabled"],
        ]
        if certify:
            row.extend(
                [
                    stats["certified"],
                    stats["checked_paths"],
                    stats["quarantined"],
                ]
            )
        rows.append(row)
    headers = [
        "engine", "paths", "solved", "cache hits", "subsumed", "fast path",
        "core solves", "min cores", "unknown", "slices", "resumed",
        "instr saved", "evictions", "sb hits", "sb deopts", "hung",
        "degraded", "deadline", "warm hits", "store quar", "store off",
    ]
    if certify:
        headers.extend(["certified", "checked", "quarantined"])
    return format_table(
        headers,
        rows,
        title=f"query pipeline breakdown on {workload}",
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="uri-parser")
    parser.add_argument("--scale", type=int, default=None)
    parser.add_argument(
        "--no-simplify",
        action="store_true",
        help="disable algebraic term simplification during measurement "
             "(shows the raw per-translation term shapes)",
    )
    parser.add_argument(
        "--pipeline",
        action="store_true",
        help="report the query-answer breakdown (solved / cached / "
             "fast-path / core solves) instead of structural metrics",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="explore on N worker processes (breakdown sums exactly)",
    )
    parser.add_argument(
        "--store", metavar="DIR", default=None,
        help="attach the persistent artifact store at DIR for the "
             "pipeline breakdown (warm hits appear in the warm-hit "
             "column; see repro.core.store)",
    )
    parser.add_argument(
        "--certify",
        action="store_true",
        help="run the pipeline breakdown in certify mode and report the "
             "evidence-layer columns (certified answers, replay-checked "
             "paths, quarantined cache entries)",
    )
    args = parser.parse_args(argv)
    if args.pipeline:
        breakdown = compare_pipeline(
            args.workload,
            args.scale,
            args.jobs,
            certify=args.certify,
            store_dir=args.store,
        )
        print(render_pipeline(breakdown, args.workload, certify=args.certify))
        return 0
    from ..smt import terms

    previous = terms.simplification_enabled()
    terms.set_simplification(not args.no_simplify)
    try:
        comparison = compare_engines(args.workload, args.scale)
    finally:
        terms.set_simplification(previous)
    suffix = " (simplification OFF)" if args.no_simplify else ""
    print(render(comparison, args.workload + suffix))
    print(
        "\nNote: with constructor-level simplification and hash-consing"
        " enabled,\nall four translation pipelines converge to identical"
        " path-condition DAGs\non these workloads — deriving semantics"
        " from the formal specification costs\nnothing in SMT query"
        " complexity (the paper's Sect. V-B open question)."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
