"""Uniform construction of the four SE engines under comparison.

Mirrors the paper's evaluation setup: BINSEC, BinSym, SymEx-VP and angr
(with the fixed lifter for the Fig. 6 performance comparison, or with
the five historical bugs for the Table I accuracy experiment).  All
engines receive identical binaries and are driven by the same explorer
and solver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..baselines.dba import DbaEngine
from ..baselines.vexir import FIVE_ANGR_BUGS, VexEngine
from ..baselines.vp import VpExecutor
from ..core import BinSymExecutor, ExplorationResult, Explorer
from ..loader.image import Image
from ..spec.isa import ISA, rv32im

__all__ = ["ENGINE_ORDER", "EngineSpec", "make_engine", "explore_with"]

#: Fig. 6 bar order: BINSEC, BinSym, SymEx-VP, angr.
ENGINE_ORDER = ("binsec", "binsym", "symex-vp", "angr")


@dataclass(frozen=True)
class EngineSpec:
    key: str
    label: str
    factory: Callable


def make_engine(
    key: str,
    isa: ISA,
    image: Image,
    symbolic_registers=(),
    max_steps: int = 1_000_000,
    staging: bool = True,
    superblocks: bool = True,
):
    """Instantiate an engine by key.

    Keys: ``binsym``, ``binsec``, ``symex-vp``, ``angr`` (fixed lifter)
    and ``angr-buggy`` (the five historical lifter bugs seeded).

    ``staging`` toggles staged semantics execution and ``superblocks``
    superblock trace compilation for the specification-derived engine
    (``binsym``); the IR-based baselines have their own translation
    caches and ignore both (the VP engine keeps superblocks off by
    construction — its bus models a per-instruction fetch quantum).
    """
    common = dict(symbolic_registers=symbolic_registers, max_steps=max_steps)
    if key == "binsym":
        return BinSymExecutor(
            isa, image, staging=staging, superblocks=superblocks, **common
        )
    if key == "binsec":
        return DbaEngine(isa, image, **common)
    if key == "symex-vp":
        return VpExecutor(isa, image, **common)
    if key == "angr":
        return VexEngine(isa, image, **common)
    if key == "angr-buggy":
        return VexEngine(isa, image, bugs=FIVE_ANGR_BUGS, **common)
    raise ValueError(f"unknown engine key {key!r}")


def explore_with(
    key: str,
    image: Image,
    isa: Optional[ISA] = None,
    symbolic_registers=(),
    max_paths: int = 1_000_000,
    max_steps: int = 1_000_000,
    strategy: str = "dfs",
    jobs: int = 1,
    use_cache: bool = False,
    solver=None,
) -> ExplorationResult:
    """Build an engine, explore the image, return the result.

    The exploration knobs mirror :class:`repro.core.Explorer`: every
    baseline engine implements the same executor interface, so parallel
    workers and the cross-path query cache apply to all of them alike.
    A ``solver`` can be shared across calls — exploring the same image
    with several engines re-issues largely identical branch queries,
    which a shared :class:`repro.smt.CachingSolver` answers from cache.
    """
    engine = make_engine(
        key,
        isa if isa is not None else rv32im(),
        image,
        symbolic_registers=symbolic_registers,
        max_steps=max_steps,
    )
    return Explorer(
        engine,
        solver=solver,
        max_paths=max_paths,
        strategy=strategy,
        jobs=jobs,
        use_cache=use_cache,
    ).explore()
