"""Fig. 6 reproduction: wall-clock comparison of the four SE engines.

Runs every benchmark with each engine ``repeats`` times and reports the
arithmetic mean, rendered as a log-scale grouped bar chart (the paper's
Fig. 6 visual) plus a CSV block.  The claim being reproduced is the
*ordering* — BINSEC fastest, then BinSym, then SymEx-VP, with angr an
order of magnitude behind — and its mechanism attribution:

* BINSEC-like: persistent lifted-block cache + concrete fast path,
* BinSym: fast path, but semantics re-interpreted through the formal
  specification every step,
* SymEx-VP-like: BinSym semantics plus TLM bus transactions and kernel
  delta cycles per access,
* angr-like (fixed lifter): per-visit lifting and claripy-style
  build-a-term-for-everything evaluation.

Run as a module::

    python -m repro.eval.fig6 [--scale N] [--repeats K]
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass, field
from typing import Optional

from ..smt import terms
from ..spec.isa import rv32im
from .engines import explore_with
from .report import csv_lines, log_bar_chart
from .workloads import TABLE1_WORKLOADS, WORKLOADS

__all__ = ["Fig6Result", "run_fig6", "render_fig6", "main"]

#: Fig. 6 bar order (left to right in the paper's chart).
_ENGINES = ("binsec", "binsym", "symex-vp", "angr")
_LABELS = {
    "binsec": "BinSec",
    "binsym": "BinSym",
    "symex-vp": "SymEx-VP",
    "angr": "angr",
}


@dataclass
class Fig6Result:
    benchmarks: list[str]
    scale_used: dict[str, int]
    #: engine key -> list of mean seconds (one per benchmark)
    means: dict[str, list[float]] = field(default_factory=dict)
    #: engine key -> list of relative std-dev (max across runs)
    rel_stddev: dict[str, list[float]] = field(default_factory=dict)
    paths: dict[str, list[int]] = field(default_factory=dict)

    def ordering_for(self, benchmark: str) -> list[str]:
        """Engine keys sorted fastest-to-slowest on one benchmark."""
        index = self.benchmarks.index(benchmark)
        return sorted(self.means, key=lambda key: self.means[key][index])


def run_fig6(
    scale: Optional[int] = None,
    repeats: int = 3,
    benchmarks=TABLE1_WORKLOADS,
    engines=_ENGINES,
) -> Fig6Result:
    """Time every engine on every benchmark (mean over ``repeats``)."""
    isa = rv32im()
    result = Fig6Result(list(benchmarks), {})
    for key in engines:
        result.means[key] = []
        result.rel_stddev[key] = []
        result.paths[key] = []
    for name in benchmarks:
        workload = WORKLOADS[name]
        effective_scale = scale or workload.fig6_scale
        result.scale_used[name] = effective_scale
        image = workload.image(effective_scale)
        for key in engines:
            samples = []
            paths = 0
            for _ in range(repeats):
                # Reset term interning so no engine inherits a warm
                # cache from a predecessor (fair wall-clock comparison).
                terms.reset_interner()
                start = time.perf_counter()
                exploration = explore_with(key, image, isa=isa)
                samples.append(time.perf_counter() - start)
                paths = exploration.num_paths
            mean = sum(samples) / len(samples)
            variance = sum((s - mean) ** 2 for s in samples) / len(samples)
            result.means[key].append(mean)
            result.rel_stddev[key].append(
                (variance ** 0.5) / mean if mean > 0 else 0.0
            )
            result.paths[key].append(paths)
    return result


def render_fig6(result: Fig6Result) -> str:
    series = {
        _LABELS.get(key, key): values for key, values in result.means.items()
    }
    chart = log_bar_chart(
        result.benchmarks,
        series,
        unit="s",
        title="Fig. 6 — total execution time (arithmetic mean)",
    )
    headers = ["benchmark", "scale"] + [_LABELS.get(k, k) for k in result.means]
    rows = []
    for i, name in enumerate(result.benchmarks):
        rows.append(
            [name, result.scale_used[name]]
            + [f"{result.means[key][i]:.4f}" for key in result.means]
        )
    csv_block = "\n".join(csv_lines(headers, rows))
    max_dev = max(
        (dev for devs in result.rel_stddev.values() for dev in devs), default=0.0
    )
    return (
        chart
        + f"\n\nmax relative std-dev across runs: {max_dev * 100:.1f}%"
        + "\n\nCSV:\n"
        + csv_block
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--benchmark", action="append", default=None)
    args = parser.parse_args(argv)
    benchmarks = tuple(args.benchmark) if args.benchmark else TABLE1_WORKLOADS
    result = run_fig6(scale=args.scale, repeats=args.repeats, benchmarks=benchmarks)
    print(render_fig6(result))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
