"""Run every paper experiment and emit a single markdown report.

The one-command reproduction::

    python -m repro.eval.run_all [-o report.md] [--repeats 3] [--scale N]

Sections: Table I, the five lifter bugs, Fig. 5, the DIVU edge case,
Fig. 6 timings, SMT query complexity and the LOC split.  Runs at the
default (seconds-scale) workload sizes; see EXPERIMENTS.md for the
paper-scale record.
"""

from __future__ import annotations

import argparse
import io
import sys
import time
from contextlib import redirect_stdout

from . import bugs, fig6, loc_report, query_stats, table1

__all__ = ["generate_report", "main"]


def _capture(fn, *args, **kwargs) -> str:
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        fn(*args, **kwargs)
    return buffer.getvalue().rstrip()


def generate_report(repeats: int = 1, scale=None) -> str:
    """Run all experiments; returns the markdown report text."""
    started = time.strftime("%Y-%m-%d %H:%M:%S")
    sections: list[tuple[str, str]] = []

    rows = table1.run_table1(scale=scale)
    sections.append(("Table I — path counts", table1.render_table1(rows)))

    sections.append(
        (
            "Sect. V-A — lifter bugs, Fig. 5, DIVU edge",
            _capture(bugs.main, []),
        )
    )

    fig6_result = fig6.run_fig6(scale=scale, repeats=repeats)
    sections.append(("Fig. 6 — execution time", fig6.render_fig6(fig6_result)))

    comparison = query_stats.compare_engines("bubble-sort", scale)
    sections.append(
        (
            "SMT query complexity (Sect. V-B future work)",
            query_stats.render(comparison, "bubble-sort"),
        )
    )

    sections.append(("LOC split (Sect. III-B)", _capture(loc_report.main, [])))

    out = [
        "# BinSym reproduction — experiment report",
        "",
        f"Generated {started}; workload scales: "
        + ("default" if scale is None else str(scale))
        + f"; fig6 repeats: {repeats}.",
        "",
    ]
    for title, body in sections:
        out.append(f"## {title}")
        out.append("")
        out.append("```")
        out.append(body)
        out.append("```")
        out.append("")
    return "\n".join(out)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-o", "--output", default=None,
                        help="write the report to a file (default: stdout)")
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument("--scale", type=int, default=None)
    args = parser.parse_args(argv)
    report = generate_report(repeats=args.repeats, scale=args.scale)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print(f"report written to {args.output}")
    else:
        print(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
