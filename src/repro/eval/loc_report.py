"""Lines-of-code report (the paper's Sect. III-B complexity claim).

The paper reports "the entire SE engine for RISC-V binary code in only
1000 LOC in Haskell with 1500 LOC of LibRISCV specification", arguing
that deriving the engine from an executable formal specification keeps
it small.  This module reports the analogous split for this repository:
the BinSym core (:mod:`repro.core`) versus the formal specification
(:mod:`repro.spec`) versus everything else, counting non-blank,
non-comment lines.

Run as a module: ``python -m repro.eval.loc_report``.
"""

from __future__ import annotations

import os
from pathlib import Path

from .report import format_table

__all__ = ["count_loc", "package_loc", "main"]


def count_loc(path: Path) -> int:
    """Non-blank, non-comment (``#``) physical lines in one file.

    Docstrings are counted as code (they carry the API contract), which
    matches how ``cloc`` treats Haskell haddock comments poorly anyway —
    the *relative* sizes are what matters for the claim.
    """
    count = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            stripped = line.strip()
            if stripped and not stripped.startswith("#"):
                count += 1
    return count


def package_loc(root: Path) -> dict[str, int]:
    """LOC per top-level subpackage of ``repro``."""
    totals: dict[str, int] = {}
    for dirpath, _dirnames, filenames in os.walk(root):
        for filename in filenames:
            if not filename.endswith(".py"):
                continue
            path = Path(dirpath) / filename
            relative = path.relative_to(root)
            top = relative.parts[0] if len(relative.parts) > 1 else "(top)"
            totals[top] = totals.get(top, 0) + count_loc(path)
    return totals


def main(argv=None) -> int:
    import repro

    root = Path(repro.__file__).parent
    totals = package_loc(root)
    rows = sorted(totals.items(), key=lambda item: -item[1])
    total = sum(totals.values())
    print(
        format_table(
            ["subpackage", "LOC"],
            [[name, loc] for name, loc in rows] + [["total", total]],
            title="Lines of code by subpackage (cf. paper Sect. III-B)",
        )
    )
    core = totals.get("core", 0)
    spec = totals.get("spec", 0)
    print(
        f"\nBinSym core: {core} LOC on top of a {spec} LOC formal "
        f"specification (paper: ~1000 LOC engine + ~1500 LOC spec)."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
