"""Pseudo-instruction expansion (RISC-V assembler conventions).

Expands the standard pseudo-instructions (Unprivileged spec, Chapter 25
"RISC-V Assembly Programmer's Handbook") into base instructions before
encoding.  Expansion happens per-statement and may produce one or two
real instructions; symbol-valued ``li``/``la`` always reserve two words
(``lui``+``addi``) so that layout is stable across assembler passes.
"""

from __future__ import annotations

from .parser import (
    AsmError,
    HiLo,
    Immediate,
    InstructionStmt,
    MemOperand,
    Register,
    Symbol,
)

__all__ = ["expand_pseudo", "PSEUDO_MNEMONICS"]

_ZERO = Register(0)
_RA = Register(1)


def _ins(mnemonic: str, operands, line: int) -> InstructionStmt:
    return InstructionStmt(mnemonic, list(operands), line)


def _expand_li(stmt: InstructionStmt) -> list[InstructionStmt]:
    rd, value = stmt.operands
    if isinstance(value, (Symbol, HiLo)):
        return _expand_la(stmt)
    if not isinstance(value, Immediate):
        raise AsmError("li expects an immediate", stmt.line)
    imm = value.value & 0xFFFFFFFF
    signed = imm - (1 << 32) if imm & 0x80000000 else imm
    if -2048 <= signed <= 2047:
        return [_ins("addi", [rd, _ZERO, Immediate(signed)], stmt.line)]
    upper = (imm + 0x800) >> 12  # round so the addi part fits
    lower = (imm - (upper << 12)) & 0xFFFFFFFF
    lower_signed = lower - (1 << 32) if lower & 0x80000000 else lower
    out = [_ins("lui", [rd, Immediate(upper & 0xFFFFF)], stmt.line)]
    if lower_signed != 0:
        out.append(_ins("addi", [rd, rd, Immediate(lower_signed)], stmt.line))
    return out


def _expand_la(stmt: InstructionStmt) -> list[InstructionStmt]:
    rd, target = stmt.operands
    if isinstance(target, Immediate):
        return _expand_li(stmt)
    if not isinstance(target, Symbol):
        raise AsmError("la expects a symbol", stmt.line)
    # Absolute addressing: lui %hi(sym); addi rd, rd, %lo(sym).
    return [
        _ins("lui", [rd, HiLo("hi", target.name, target.addend)], stmt.line),
        _ins("addi", [rd, rd, HiLo("lo", target.name, target.addend)], stmt.line),
    ]


def _unary(mnemonic, build):
    def expand(stmt: InstructionStmt) -> list[InstructionStmt]:
        if len(stmt.operands) != 2:
            raise AsmError(f"{mnemonic} expects 2 operands", stmt.line)
        rd, rs = stmt.operands
        return [build(rd, rs, stmt.line)]

    return expand


def _branch_zero(real: str, swap: bool = False):
    def expand(stmt: InstructionStmt) -> list[InstructionStmt]:
        if len(stmt.operands) != 2:
            raise AsmError("branch pseudo expects rs, label", stmt.line)
        rs, target = stmt.operands
        operands = [_ZERO, rs] if swap else [rs, _ZERO]
        return [_ins(real, operands + [target], stmt.line)]

    return expand


def _branch_swapped(real: str):
    def expand(stmt: InstructionStmt) -> list[InstructionStmt]:
        if len(stmt.operands) != 3:
            raise AsmError("branch pseudo expects rs, rt, label", stmt.line)
        rs, rt, target = stmt.operands
        return [_ins(real, [rt, rs, target], stmt.line)]

    return expand


def _expand_jump(stmt: InstructionStmt) -> list[InstructionStmt]:
    (target,) = stmt.operands
    return [_ins("jal", [_ZERO, target], stmt.line)]


def _expand_jal_short(stmt: InstructionStmt) -> list[InstructionStmt]:
    return [_ins("jal", [_RA, stmt.operands[0]], stmt.line)]


def _expand_jr(stmt: InstructionStmt) -> list[InstructionStmt]:
    (rs,) = stmt.operands
    return [_ins("jalr", [_ZERO, rs, Immediate(0)], stmt.line)]


def _expand_jalr_short(stmt: InstructionStmt) -> list[InstructionStmt]:
    (rs,) = stmt.operands
    if isinstance(rs, MemOperand):
        return [_ins("jalr", [_RA, rs], stmt.line)]
    return [_ins("jalr", [_RA, rs, Immediate(0)], stmt.line)]


_PSEUDO_TABLE = {
    "nop": lambda s: [_ins("addi", [_ZERO, _ZERO, Immediate(0)], s.line)],
    "li": _expand_li,
    "la": _expand_la,
    "mv": _unary("mv", lambda rd, rs, ln: _ins("addi", [rd, rs, Immediate(0)], ln)),
    "not": _unary("not", lambda rd, rs, ln: _ins("xori", [rd, rs, Immediate(-1)], ln)),
    "neg": _unary("neg", lambda rd, rs, ln: _ins("sub", [rd, _ZERO, rs], ln)),
    "seqz": _unary("seqz", lambda rd, rs, ln: _ins("sltiu", [rd, rs, Immediate(1)], ln)),
    "snez": _unary("snez", lambda rd, rs, ln: _ins("sltu", [rd, _ZERO, rs], ln)),
    "sltz": _unary("sltz", lambda rd, rs, ln: _ins("slt", [rd, rs, _ZERO], ln)),
    "sgtz": _unary("sgtz", lambda rd, rs, ln: _ins("slt", [rd, _ZERO, rs], ln)),
    "beqz": _branch_zero("beq"),
    "bnez": _branch_zero("bne"),
    "bltz": _branch_zero("blt"),
    "bgez": _branch_zero("bge"),
    "blez": _branch_zero("bge", swap=True),
    "bgtz": _branch_zero("blt", swap=True),
    "bgt": _branch_swapped("blt"),
    "ble": _branch_swapped("bge"),
    "bgtu": _branch_swapped("bltu"),
    "bleu": _branch_swapped("bgeu"),
    "j": _expand_jump,
    "jr": _expand_jr,
    "ret": lambda s: [_ins("jalr", [_ZERO, _RA, Immediate(0)], s.line)],
    "call": _expand_jal_short,
    "tail": _expand_jump,
}

PSEUDO_MNEMONICS = frozenset(_PSEUDO_TABLE)


def expand_pseudo(stmt: InstructionStmt) -> list[InstructionStmt]:
    """Expand a (possibly pseudo) instruction into real instructions.

    Single-operand ``jal``/``jalr`` shorthands are normalized here too.
    """
    mnemonic = stmt.mnemonic
    if mnemonic == "jal" and len(stmt.operands) == 1:
        return _expand_jal_short(stmt)
    if mnemonic == "jalr" and len(stmt.operands) == 1:
        return _expand_jalr_short(stmt)
    expander = _PSEUDO_TABLE.get(mnemonic)
    if expander is None:
        return [stmt]
    return expander(stmt)
