"""Instruction word encoding from the riscv-opcodes tables.

The encoder is the write-direction twin of :mod:`repro.spec.decoder`:
it starts from the same :class:`repro.spec.opcodes.Encoding` entry and
deposits operand fields into the match word.  Because both directions
share one table, ``decode(encode(x)) == x`` holds by construction — a
property the test-suite checks for every instruction.
"""

from __future__ import annotations

from ..spec.opcodes import Encoding
from .parser import AsmError

__all__ = ["encode_instruction", "check_signed_range", "check_unsigned_range"]


def check_signed_range(value: int, bits: int, what: str, line=None) -> int:
    low, high = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    if not low <= value <= high:
        raise AsmError(f"{what} {value} out of signed {bits}-bit range", line)
    return value & ((1 << bits) - 1)


def check_unsigned_range(value: int, bits: int, what: str, line=None) -> int:
    if not 0 <= value < (1 << bits):
        raise AsmError(f"{what} {value} out of unsigned {bits}-bit range", line)
    return value


def _encode_b_imm(offset: int) -> int:
    imm = offset & 0x1FFF
    return (
        (((imm >> 12) & 0x1) << 31)
        | (((imm >> 5) & 0x3F) << 25)
        | (((imm >> 1) & 0xF) << 8)
        | (((imm >> 11) & 0x1) << 7)
    )


def _encode_j_imm(offset: int) -> int:
    imm = offset & 0x1FFFFF
    return (
        (((imm >> 20) & 0x1) << 31)
        | (((imm >> 1) & 0x3FF) << 21)
        | (((imm >> 11) & 0x1) << 20)
        | (((imm >> 12) & 0xFF) << 12)
    )


def encode_instruction(
    encoding: Encoding,
    rd: int = 0,
    rs1: int = 0,
    rs2: int = 0,
    rs3: int = 0,
    imm: int = 0,
    line=None,
) -> int:
    """Encode one instruction; ``imm`` is interpreted per format."""
    word = encoding.match
    fmt = encoding.fmt
    if fmt in ("r", "r4", "i", "shift", "load", "u", "j"):
        word |= (rd & 0x1F) << 7
    if fmt in ("r", "r4", "i", "shift", "load", "s", "b"):
        word |= (rs1 & 0x1F) << 15
    if fmt in ("r", "r4", "s", "b"):
        word |= (rs2 & 0x1F) << 20
    if fmt == "r4":
        word |= (rs3 & 0x1F) << 27
    if fmt in ("i", "load"):
        # Accept -2048..4095: negative two's complement or raw unsigned.
        if imm < 0:
            value = check_signed_range(imm, 12, "immediate", line)
        elif imm < (1 << 12):
            value = imm
        else:
            raise AsmError(f"immediate {imm} out of 12-bit range", line)
        word |= value << 20
    elif fmt == "shift":
        word |= check_unsigned_range(imm, 5, "shift amount", line) << 20
    elif fmt == "s":
        value = check_signed_range(imm, 12, "store offset", line)
        word |= ((value >> 5) & 0x7F) << 25
        word |= (value & 0x1F) << 7
    elif fmt == "b":
        if imm % 2:
            raise AsmError(f"branch offset {imm} is odd", line)
        check_signed_range(imm, 13, "branch offset", line)
        word |= _encode_b_imm(imm)
    elif fmt == "u":
        # The operand is the raw 20-bit field value (GNU as semantics for
        # `lui`); %hi() resolution already produces the field value.
        if not -(1 << 19) <= imm < (1 << 20):
            raise AsmError(f"U-type immediate {imm} out of range", line)
        word |= (imm & 0xFFFFF) << 12
    elif fmt == "j":
        if imm % 2:
            raise AsmError(f"jump offset {imm} is odd", line)
        check_signed_range(imm, 21, "jump offset", line)
        word |= _encode_j_imm(imm)
    return word & 0xFFFFFFFF
