"""RV32IM(+custom) assembler.

A two-pass assembler replacing the GNU binutils cross toolchain (not
available offline): GNU-as-style syntax, standard pseudo-instructions,
``%hi``/``%lo`` relocations and data directives.  Encodings come from
the same riscv-opcodes tables the decoder uses, so assembler and
disassembler cannot drift apart.
"""

from .assembler import Assembler, assemble
from .encoder import encode_instruction
from .parser import AsmError, parse_source

__all__ = ["Assembler", "assemble", "encode_instruction", "AsmError", "parse_source"]
