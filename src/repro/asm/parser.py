"""Lexer and parser for RV32 assembly source.

Supports the subset of GNU-as syntax the repository's programs use:

* labels (``name:``), comments (``#``, ``//``, ``;``),
* instructions with register/immediate/symbol operands,
* memory operands ``offset(base)`` with symbolic or numeric offsets,
* relocation operators ``%hi(sym)`` and ``%lo(sym)``,
* directives: ``.text``, ``.data``, ``.org``, ``.align``, ``.globl``,
  ``.word``, ``.half``, ``.byte``, ``.asciz``/``.string``, ``.ascii``,
  ``.space``/``.zero``, ``.equ``/``.set``.

The parser produces a flat statement list; layout and symbol resolution
happen in :mod:`repro.asm.assembler`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional, Union

from ..arch.regfile import register_index

__all__ = [
    "AsmError",
    "Register",
    "Immediate",
    "Symbol",
    "MemOperand",
    "HiLo",
    "Operand",
    "LabelStmt",
    "DirectiveStmt",
    "InstructionStmt",
    "Statement",
    "parse_source",
]


class AsmError(ValueError):
    """Assembly syntax or semantics error, annotated with a location."""

    def __init__(self, message: str, line: Optional[int] = None):
        self.line = line
        prefix = f"line {line}: " if line is not None else ""
        super().__init__(prefix + message)


@dataclass(frozen=True)
class Register:
    index: int


@dataclass(frozen=True)
class Immediate:
    value: int


@dataclass(frozen=True)
class Symbol:
    name: str
    addend: int = 0


@dataclass(frozen=True)
class HiLo:
    """%hi(sym+addend) / %lo(sym+addend) relocation operand."""

    kind: str  # "hi" | "lo"
    symbol: str
    addend: int = 0


@dataclass(frozen=True)
class MemOperand:
    """``offset(base)`` memory operand."""

    offset: Union[Immediate, Symbol, HiLo]
    base: Register


Operand = Union[Register, Immediate, Symbol, HiLo, MemOperand]


@dataclass
class LabelStmt:
    name: str
    line: int


@dataclass
class DirectiveStmt:
    name: str
    args: list
    line: int


@dataclass
class InstructionStmt:
    mnemonic: str
    operands: list
    line: int


Statement = Union[LabelStmt, DirectiveStmt, InstructionStmt]

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")
_INT_RE = re.compile(r"^[+-]?(0[xX][0-9a-fA-F]+|0[bB][01]+|\d+)$")
_SYMBOL_RE = re.compile(r"^[A-Za-z_.$][\w.$]*$")
_CHAR_RE = re.compile(r"^'(\\?.)'$")
_MEM_RE = re.compile(r"^(.*)\(\s*([\w.$]+)\s*\)$")
_HILO_RE = re.compile(r"^%(hi|lo)\(\s*([A-Za-z_.$][\w.$]*)\s*([+-]\s*\d+)?\s*\)$")

_ESCAPES = {
    "n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39, '"': 34,
    "a": 7, "b": 8, "f": 12, "v": 11,
}


def _strip_comment(line: str) -> str:
    out = []
    quote = None  # '"' inside strings, "'" inside char literals
    i = 0
    while i < len(line):
        char = line[i]
        if quote:
            out.append(char)
            if char == "\\" and i + 1 < len(line):
                out.append(line[i + 1])
                i += 2
                continue
            if char == quote:
                quote = None
        elif char in "\"'":
            quote = char
            out.append(char)
        elif char == "#" or char == ";":
            break
        elif char == "/" and i + 1 < len(line) and line[i + 1] == "/":
            break
        else:
            out.append(char)
        i += 1
    return "".join(out)


def _parse_char_literal(text: str) -> Optional[int]:
    match = _CHAR_RE.match(text)
    if not match:
        return None
    body = match.group(1)
    if body.startswith("\\"):
        escaped = body[1]
        if escaped not in _ESCAPES:
            raise AsmError(f"unknown escape {body!r}")
        return _ESCAPES[escaped]
    return ord(body)


def parse_operand(text: str, line: int) -> Operand:
    text = text.strip()
    if not text:
        raise AsmError("empty operand", line)
    # Memory operand offset(base)?  (A bare %hi(sym) also matches the
    # regex, but its "base" is not a register, so it falls through.)
    mem_match = _MEM_RE.match(text)
    if mem_match:
        offset_text = mem_match.group(1).strip() or "0"
        base_text = mem_match.group(2)
        try:
            base = Register(register_index(base_text))
        except ValueError:
            base = None
        if base is not None:
            offset = parse_operand(offset_text, line)
            if isinstance(offset, (Immediate, Symbol, HiLo)):
                return MemOperand(offset, base)
            raise AsmError(f"bad memory offset {offset_text!r}", line)
    # %hi/%lo relocation (possibly wrapping a mem operand handled above).
    hilo_match = _HILO_RE.match(text)
    if hilo_match:
        addend_text = hilo_match.group(3)
        addend = int(addend_text.replace(" ", "")) if addend_text else 0
        return HiLo(hilo_match.group(1), hilo_match.group(2), addend)
    # Register?
    try:
        return Register(register_index(text))
    except ValueError:
        pass
    # Integer literal?
    if _INT_RE.match(text):
        return Immediate(int(text, 0))
    char_value = _parse_char_literal(text)
    if char_value is not None:
        return Immediate(char_value)
    # symbol +/- addend
    for sign in ("+", "-"):
        if sign in text[1:]:
            head, _, tail = text.rpartition(sign)
            head, tail = head.strip(), tail.strip()
            if _SYMBOL_RE.match(head) and _INT_RE.match(tail):
                addend = int(tail, 0)
                return Symbol(head, addend if sign == "+" else -addend)
    if _SYMBOL_RE.match(text):
        return Symbol(text)
    raise AsmError(f"cannot parse operand {text!r}", line)


def _split_operands(text: str, line: int) -> list[str]:
    """Split on commas not inside parentheses or quotes."""
    parts = []
    depth = 0
    quote = None
    current = []
    for char in text:
        if quote:
            current.append(char)
            if char == quote:
                quote = None
            continue
        if char in "'\"":
            quote = char
            current.append(char)
        elif char == "(":
            depth += 1
            current.append(char)
        elif char == ")":
            depth -= 1
            current.append(char)
        elif char == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    if quote:
        raise AsmError("unterminated string", line)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def _parse_directive_arg(text: str, line: int):
    text = text.strip()
    if text.startswith('"'):
        if not text.endswith('"') or len(text) < 2:
            raise AsmError("unterminated string literal", line)
        body = text[1:-1]
        out = bytearray()
        i = 0
        while i < len(body):
            char = body[i]
            if char == "\\" and i + 1 < len(body):
                escaped = body[i + 1]
                if escaped not in _ESCAPES:
                    raise AsmError(f"unknown escape \\{escaped}", line)
                out.append(_ESCAPES[escaped])
                i += 2
            else:
                out.append(ord(char))
                i += 1
        return bytes(out)
    return parse_operand(text, line)


def parse_source(source: str) -> list[Statement]:
    """Parse assembly source into a statement list."""
    statements: list[Statement] = []
    for line_number, raw_line in enumerate(source.splitlines(), start=1):
        line = _strip_comment(raw_line).strip()
        # Peel off any leading labels (several per line are legal).
        while True:
            match = _LABEL_RE.match(line)
            if not match:
                break
            statements.append(LabelStmt(match.group(1), line_number))
            line = line[match.end():].strip()
        if not line:
            continue
        head, _, rest = line.partition(" ")
        rest = rest.strip()
        if head.startswith("."):
            args = (
                [_parse_directive_arg(p, line_number) for p in _split_operands(rest, line_number)]
                if rest
                else []
            )
            statements.append(DirectiveStmt(head.lower(), args, line_number))
        else:
            operands = (
                [parse_operand(p, line_number) for p in _split_operands(rest, line_number)]
                if rest
                else []
            )
            statements.append(InstructionStmt(head.lower(), operands, line_number))
    return statements
