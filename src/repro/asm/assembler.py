"""Two-pass RV32 assembler producing loadable images.

Pass 1 expands pseudo-instructions, lays out sections and binds labels;
pass 2 resolves symbols/relocations and encodes instruction words via
the shared riscv-opcodes tables.  The output is an
:class:`repro.loader.image.Image`, directly loadable by every engine or
writable to an ELF file via :mod:`repro.loader.elf`.

Supported source constructs are documented in :mod:`repro.asm.parser`.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Union

from ..loader.image import Image
from ..spec.isa import ISA, rv32im
from .encoder import encode_instruction
from .parser import (
    AsmError,
    DirectiveStmt,
    HiLo,
    Immediate,
    InstructionStmt,
    LabelStmt,
    MemOperand,
    Register,
    Symbol,
    parse_source,
)
from .pseudo import expand_pseudo

__all__ = ["Assembler", "assemble"]

_DEFAULT_TEXT_BASE = 0x0001_0000
_DEFAULT_DATA_BASE = 0x0002_0000


@dataclass
class _Section:
    name: str
    base: int
    data: bytearray

    @property
    def cursor(self) -> int:
        return self.base + len(self.data)

    def pad_to(self, address: int, line: Optional[int] = None) -> None:
        if address < self.cursor:
            raise AsmError(
                f".org/.align going backwards ({address:#x} < {self.cursor:#x})",
                line,
            )
        self.data.extend(b"\x00" * (address - self.cursor))

    def append(self, payload: bytes) -> None:
        self.data.extend(payload)


class Assembler:
    """Assembler bound to an ISA (defaults to RV32IM)."""

    def __init__(
        self,
        isa: Optional[ISA] = None,
        text_base: int = _DEFAULT_TEXT_BASE,
        data_base: int = _DEFAULT_DATA_BASE,
    ):
        self.isa = isa if isa is not None else rv32im()
        self.text_base = text_base
        self.data_base = data_base

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def assemble(self, source: str, entry_symbol: str = "_start") -> Image:
        """Assemble source text into an Image.

        The entry point is the ``entry_symbol`` label if defined, else
        the start of the text section.
        """
        statements = parse_source(source)
        symbols, placed = self._layout(statements)
        image = self._emit(placed, symbols)
        image.entry = symbols.get(entry_symbol, self.text_base)
        return image

    # ------------------------------------------------------------------
    # Pass 1: layout
    # ------------------------------------------------------------------

    def _layout(self, statements):
        """Bind labels and compute per-statement addresses."""
        text = _Section("text", self.text_base, bytearray())
        data = _Section("data", self.data_base, bytearray())
        sections = {"text": text, "data": data}
        current = text
        symbols: dict[str, int] = {}
        placed: list[tuple[int, str, Union[InstructionStmt, DirectiveStmt]]] = []

        def define(name: str, value: int, line: int) -> None:
            if name in symbols:
                raise AsmError(f"duplicate symbol {name!r}", line)
            symbols[name] = value

        for stmt in statements:
            if isinstance(stmt, LabelStmt):
                define(stmt.name, current.cursor, stmt.line)
            elif isinstance(stmt, DirectiveStmt):
                current = self._layout_directive(
                    stmt, current, sections, symbols, define, placed
                )
            elif isinstance(stmt, InstructionStmt):
                for real in expand_pseudo(stmt):
                    placed.append((current.cursor, current.name, real))
                    current.append(b"\x00\x00\x00\x00")  # patched in pass 2
            else:  # pragma: no cover - parser produces only these
                raise AsmError(f"unexpected statement {stmt!r}")
        return symbols, (placed, sections)

    def _layout_directive(self, stmt, current, sections, symbols, define, placed):
        name = stmt.name
        if name == ".text":
            return sections["text"]
        if name == ".data":
            return sections["data"]
        if name in (".globl", ".global", ".type", ".size", ".section"):
            return current  # accepted and ignored
        if name == ".org":
            (target,) = stmt.args
            if not isinstance(target, Immediate):
                raise AsmError(".org expects an address", stmt.line)
            current.pad_to(target.value, stmt.line)
            return current
        if name in (".align", ".p2align"):
            (power,) = stmt.args
            alignment = 1 << power.value
            remainder = current.cursor % alignment
            if remainder:
                current.pad_to(current.cursor + alignment - remainder, stmt.line)
            return current
        if name == ".balign":
            (alignment,) = stmt.args
            remainder = current.cursor % alignment.value
            if remainder:
                current.pad_to(current.cursor + alignment.value - remainder, stmt.line)
            return current
        if name in (".equ", ".set"):
            label, value = stmt.args
            if not isinstance(label, Symbol) or not isinstance(value, Immediate):
                raise AsmError(f"{name} expects symbol, immediate", stmt.line)
            define(label.name, value.value, stmt.line)
            return current
        if name in (".word", ".half", ".byte", ".ascii", ".asciz", ".string",
                    ".space", ".zero"):
            placed.append((current.cursor, current.name, stmt))
            current.append(b"\x00" * self._directive_size(stmt))
            return current
        raise AsmError(f"unknown directive {name}", stmt.line)

    @staticmethod
    def _directive_size(stmt: DirectiveStmt) -> int:
        name = stmt.name
        if name == ".word":
            return 4 * len(stmt.args)
        if name == ".half":
            return 2 * len(stmt.args)
        if name == ".byte":
            return len(stmt.args)
        if name == ".ascii":
            return sum(len(a) for a in stmt.args)
        if name in (".asciz", ".string"):
            return sum(len(a) + 1 for a in stmt.args)
        # .space / .zero
        (count,) = stmt.args
        return count.value

    # ------------------------------------------------------------------
    # Pass 2: resolve + encode
    # ------------------------------------------------------------------

    def _emit(self, placed_and_sections, symbols) -> Image:
        placed, sections = placed_and_sections
        for address, section_name, stmt in placed:
            section = sections[section_name]
            offset = address - section.base
            if isinstance(stmt, InstructionStmt):
                word = self._encode(stmt, address, symbols)
                section.data[offset : offset + 4] = struct.pack("<I", word)
            else:
                payload = self._directive_bytes(stmt, symbols)
                section.data[offset : offset + len(payload)] = payload
        image = Image(symbols=dict(symbols))
        for section in sections.values():
            image.add_segment(section.base, bytes(section.data))
        return image

    def _directive_bytes(self, stmt: DirectiveStmt, symbols) -> bytes:
        name = stmt.name
        out = bytearray()
        if name in (".word", ".half", ".byte"):
            size = {".word": 4, ".half": 2, ".byte": 1}[name]
            for arg in stmt.args:
                value = self._resolve_data_value(arg, symbols, stmt.line)
                out.extend(value.to_bytes(size, "little", signed=False))
        elif name == ".ascii":
            for arg in stmt.args:
                out.extend(arg)
        elif name in (".asciz", ".string"):
            for arg in stmt.args:
                out.extend(arg)
                out.append(0)
        else:  # .space / .zero
            out.extend(b"\x00" * stmt.args[0].value)
        return bytes(out)

    @staticmethod
    def _resolve_data_value(arg, symbols, line) -> int:
        if isinstance(arg, Immediate):
            return arg.value & 0xFFFFFFFF
        if isinstance(arg, Symbol):
            try:
                return (symbols[arg.name] + arg.addend) & 0xFFFFFFFF
            except KeyError:
                raise AsmError(f"undefined symbol {arg.name!r}", line) from None
        raise AsmError(f"bad data value {arg!r}", line)

    def _encode(self, stmt: InstructionStmt, address: int, symbols) -> int:
        mnemonic = stmt.mnemonic
        try:
            encoding = self.isa.decoder.by_name(mnemonic)
        except KeyError:
            raise AsmError(f"unknown instruction {mnemonic!r}", stmt.line) from None
        fmt = encoding.fmt
        ops = list(stmt.operands)

        def reg(op) -> int:
            if not isinstance(op, Register):
                raise AsmError(
                    f"{mnemonic}: expected register, got {op!r}", stmt.line
                )
            return op.index

        def imm_value(op, pc_relative: bool) -> int:
            if isinstance(op, Immediate):
                return op.value
            if isinstance(op, Symbol):
                try:
                    target = symbols[op.name] + op.addend
                except KeyError:
                    raise AsmError(
                        f"undefined symbol {op.name!r}", stmt.line
                    ) from None
                return (target - address) if pc_relative else target
            if isinstance(op, HiLo):
                try:
                    target = (symbols[op.symbol] + op.addend) & 0xFFFFFFFF
                except KeyError:
                    raise AsmError(
                        f"undefined symbol {op.symbol!r}", stmt.line
                    ) from None
                if op.kind == "hi":
                    return ((target + 0x800) >> 12) & 0xFFFFF
                low = target & 0xFFF
                return low - 0x1000 if low & 0x800 else low
            raise AsmError(f"{mnemonic}: bad immediate {op!r}", stmt.line)

        if fmt == "r":
            if len(ops) != 3:
                raise AsmError(f"{mnemonic} expects rd, rs1, rs2", stmt.line)
            return encode_instruction(
                encoding, rd=reg(ops[0]), rs1=reg(ops[1]), rs2=reg(ops[2]),
                line=stmt.line,
            )
        if fmt == "r4":
            if len(ops) != 4:
                raise AsmError(f"{mnemonic} expects rd, rs1, rs2, rs3", stmt.line)
            return encode_instruction(
                encoding, rd=reg(ops[0]), rs1=reg(ops[1]), rs2=reg(ops[2]),
                rs3=reg(ops[3]), line=stmt.line,
            )
        if fmt in ("i", "shift"):
            # jalr also accepts `jalr rd, offset(rs1)`.
            if len(ops) == 2 and isinstance(ops[1], MemOperand):
                mem = ops[1]
                return encode_instruction(
                    encoding, rd=reg(ops[0]), rs1=mem.base.index,
                    imm=imm_value(mem.offset, pc_relative=False), line=stmt.line,
                )
            if len(ops) != 3:
                raise AsmError(f"{mnemonic} expects rd, rs1, imm", stmt.line)
            return encode_instruction(
                encoding, rd=reg(ops[0]), rs1=reg(ops[1]),
                imm=imm_value(ops[2], pc_relative=False), line=stmt.line,
            )
        if fmt == "load":
            if len(ops) == 2 and isinstance(ops[1], MemOperand):
                mem = ops[1]
                return encode_instruction(
                    encoding, rd=reg(ops[0]), rs1=mem.base.index,
                    imm=imm_value(mem.offset, pc_relative=False), line=stmt.line,
                )
            if len(ops) == 3:
                return encode_instruction(
                    encoding, rd=reg(ops[0]), rs1=reg(ops[1]),
                    imm=imm_value(ops[2], pc_relative=False), line=stmt.line,
                )
            raise AsmError(f"{mnemonic} expects rd, offset(rs1)", stmt.line)
        if fmt == "s":
            if len(ops) == 2 and isinstance(ops[1], MemOperand):
                mem = ops[1]
                return encode_instruction(
                    encoding, rs2=reg(ops[0]), rs1=mem.base.index,
                    imm=imm_value(mem.offset, pc_relative=False), line=stmt.line,
                )
            if len(ops) == 3:
                return encode_instruction(
                    encoding, rs2=reg(ops[0]), rs1=reg(ops[1]),
                    imm=imm_value(ops[2], pc_relative=False), line=stmt.line,
                )
            raise AsmError(f"{mnemonic} expects rs2, offset(rs1)", stmt.line)
        if fmt == "b":
            if len(ops) != 3:
                raise AsmError(f"{mnemonic} expects rs1, rs2, target", stmt.line)
            return encode_instruction(
                encoding, rs1=reg(ops[0]), rs2=reg(ops[1]),
                imm=imm_value(ops[2], pc_relative=True), line=stmt.line,
            )
        if fmt == "u":
            if len(ops) != 2:
                raise AsmError(f"{mnemonic} expects rd, imm", stmt.line)
            return encode_instruction(
                encoding, rd=reg(ops[0]),
                imm=imm_value(ops[1], pc_relative=False), line=stmt.line,
            )
        if fmt == "j":
            if len(ops) != 2:
                raise AsmError(f"{mnemonic} expects rd, target", stmt.line)
            return encode_instruction(
                encoding, rd=reg(ops[0]),
                imm=imm_value(ops[1], pc_relative=True), line=stmt.line,
            )
        if fmt in ("fence", "sys"):
            if ops:
                raise AsmError(f"{mnemonic} takes no operands", stmt.line)
            return encode_instruction(encoding, line=stmt.line)
        raise AsmError(f"unsupported format {fmt!r} for {mnemonic}", stmt.line)


def assemble(
    source: str,
    isa: Optional[ISA] = None,
    entry_symbol: str = "_start",
    **kwargs,
) -> Image:
    """Convenience one-shot assembly (see :class:`Assembler`)."""
    return Assembler(isa=isa, **kwargs).assemble(source, entry_symbol=entry_symbol)
