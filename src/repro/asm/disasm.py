"""Disassembler: instruction words back to assembly text.

Generated from the same riscv-opcodes tables as the decoder and the
assembler-encoder, completing the repository's single-source-of-truth
loop: ``disassemble(assemble(text))`` round-trips modulo formatting,
which the test-suite checks for every instruction.

Used by the execution tracer (:mod:`repro.concrete.tracer`) and handy
for debugging workload programs.
"""

from __future__ import annotations

from typing import Optional

from ..arch.regfile import ABI_NAMES
from ..loader.image import Image
from ..spec import fields
from ..spec.decoder import Decoder, IllegalInstruction
from ..spec.isa import ISA, rv32im

__all__ = ["disassemble_word", "disassemble_image", "Disassembler"]


def _reg(index: int) -> str:
    return ABI_NAMES[index]


def _signed(value: int) -> int:
    return value - (1 << 32) if value & 0x80000000 else value


class Disassembler:
    """Table-driven disassembler for one ISA."""

    def __init__(self, isa: Optional[ISA] = None):
        self.isa = isa if isa is not None else rv32im()
        self.decoder: Decoder = self.isa.decoder

    def disassemble(self, word: int, pc: Optional[int] = None) -> str:
        """Render one instruction word as assembly text.

        For PC-relative instructions the resolved absolute target is
        appended as a comment when ``pc`` is known.
        """
        try:
            decoded = self.decoder.decode(word, pc)
        except IllegalInstruction:
            return f".word {word:#010x}"
        name = decoded.name
        fmt = decoded.encoding.fmt
        if fmt == "r":
            return (
                f"{name} {_reg(fields.rd(word))}, {_reg(fields.rs1(word))}, "
                f"{_reg(fields.rs2(word))}"
            )
        if fmt == "r4":
            return (
                f"{name} {_reg(fields.rd(word))}, {_reg(fields.rs1(word))}, "
                f"{_reg(fields.rs2(word))}, {_reg(fields.rs3(word))}"
            )
        if fmt == "i":
            return (
                f"{name} {_reg(fields.rd(word))}, {_reg(fields.rs1(word))}, "
                f"{_signed(fields.imm_i(word))}"
            )
        if fmt == "shift":
            return (
                f"{name} {_reg(fields.rd(word))}, {_reg(fields.rs1(word))}, "
                f"{fields.shamt(word)}"
            )
        if fmt == "load":
            return (
                f"{name} {_reg(fields.rd(word))}, "
                f"{_signed(fields.imm_i(word))}({_reg(fields.rs1(word))})"
            )
        if fmt == "s":
            return (
                f"{name} {_reg(fields.rs2(word))}, "
                f"{_signed(fields.imm_s(word))}({_reg(fields.rs1(word))})"
            )
        if fmt == "b":
            offset = _signed(fields.imm_b(word))
            suffix = f"  # -> {pc + offset:#x}" if pc is not None else ""
            return (
                f"{name} {_reg(fields.rs1(word))}, {_reg(fields.rs2(word))}, "
                f"{offset}{suffix}"
            )
        if fmt == "u":
            return f"{name} {_reg(fields.rd(word))}, {fields.imm_u(word) >> 12:#x}"
        if fmt == "j":
            offset = _signed(fields.imm_j(word))
            suffix = f"  # -> {pc + offset:#x}" if pc is not None else ""
            return f"{name} {_reg(fields.rd(word))}, {offset}{suffix}"
        # fence / sys
        return name

    def disassemble_range(
        self, image: Image, start: int, count: int
    ) -> list[tuple[int, int, str]]:
        """Disassemble ``count`` words starting at ``start``.

        Returns (address, word, text) triples.
        """
        from ..arch.memory import ByteMemory

        memory = ByteMemory()
        image.load_into(memory)
        out = []
        for i in range(count):
            address = start + 4 * i
            word = memory.read(address, 32)
            out.append((address, word, self.disassemble(word, address)))
        return out


def disassemble_word(word: int, pc: Optional[int] = None, isa=None) -> str:
    """One-shot disassembly of a single instruction word."""
    return Disassembler(isa).disassemble(word, pc)


def disassemble_image(image: Image, isa=None) -> str:
    """Disassemble the text segment of an image (linear sweep).

    Symbol names are printed as labels where they match addresses.
    """
    disassembler = Disassembler(isa)
    by_address = {addr: name for name, addr in sorted(image.symbols.items())}
    lines = []
    text_segment = min(image.segments, key=lambda s: s.base)
    listing = disassembler.disassemble_range(
        image, text_segment.base, len(text_segment.data) // 4
    )
    for address, word, text in listing:
        label = by_address.get(address)
        if label:
            lines.append(f"{label}:")
        lines.append(f"  {address:#010x}:  {word:08x}  {text}")
    return "\n".join(lines)
