"""Command-line interface: assemble, run, disassemble and explore.

The downstream-user entry point::

    repro assemble prog.s -o prog.elf     # RV32 assembly -> ELF32
    repro run prog.s [--trace]            # emulate (spec-derived)
    repro disasm prog.elf                 # linear-sweep listing
    repro explore prog.s [--engine E]     # symbolic exploration

`run`/`explore`/`disasm` accept either assembly source (``.s``/``.asm``)
or an ELF32 executable; assembly is assembled in-memory.  Programs mark
their symbolic input with the ``make_symbolic`` ecall (a7=1337), or via
``--symbolic ADDR:LEN`` on the command line.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .asm import assemble
from .asm.disasm import disassemble_image
from .concrete import ConcreteInterpreter, HostPlatform, TracingInterpreter
from .core import Explorer, FaultPlan
from .eval.engines import make_engine
from .smt.preprocess import PreprocessConfig
from .loader import read_elf, write_elf
from .loader.image import Image
from .spec import rv32im, rv32im_zbb, rv32im_zimadd

__all__ = ["main"]

_ISA_FACTORIES = {
    "rv32im": rv32im,
    "rv32im+zimadd": rv32im_zimadd,
    "rv32im+zbb": rv32im_zbb,
}


def _load_program(path: str, isa) -> Image:
    data = Path(path).read_bytes()
    if data[:4] == b"\x7fELF":
        return read_elf(data)
    return assemble(data.decode("utf-8"), isa=isa)


def _parse_symbolic(spec: str) -> tuple[int, int]:
    try:
        address, length = spec.split(":")
        return int(address, 0), int(length, 0)
    except ValueError:
        raise SystemExit(f"bad --symbolic spec {spec!r}; expected ADDR:LEN")


def _cmd_assemble(args) -> int:
    isa = _ISA_FACTORIES[args.isa]()
    image = assemble(Path(args.input).read_text(), isa=isa)
    Path(args.output).write_bytes(write_elf(image))
    low, high = image.bounds()
    print(
        f"{args.output}: entry={image.entry:#x}, "
        f"{image.total_size()} bytes in [{low:#x}, {high:#x}), "
        f"{len(image.symbols)} symbols"
    )
    return 0


def _cmd_run(args) -> int:
    isa = _ISA_FACTORIES[args.isa]()
    image = _load_program(args.input, isa)
    if args.trace:
        tracer = TracingInterpreter(isa)
        tracer.load_image(image)
        hart = tracer.run(args.max_steps)
        print(tracer.render())
    else:
        platform = HostPlatform()
        interp = ConcreteInterpreter(isa, platform=platform)
        interp.load_image(image)
        hart = interp.run(args.max_steps)
        sys.stdout.write(platform.stdout_text())
    print(
        f"halted: {hart.halt_reason} "
        f"(exit code {hart.exit_code}, {hart.instret} instructions)"
    )
    return hart.exit_code or 0


def _cmd_disasm(args) -> int:
    isa = _ISA_FACTORIES[args.isa]()
    image = _load_program(args.input, isa)
    print(disassemble_image(image, isa=isa))
    return 0


def _cmd_explore(args) -> int:
    isa = _ISA_FACTORIES[args.isa]()
    image = _load_program(args.input, isa)
    symbolic_memory = [_parse_symbolic(s) for s in args.symbolic or ()]
    # Staging (--no-staging) is applied by the Explorer below, which
    # owns the ablation for serial and parallel runs alike.
    engine = make_engine(args.engine, isa, image, max_steps=args.max_steps)
    if symbolic_memory:
        # Configure harness-driven symbolic input on top of any
        # make_symbolic calls the program itself performs.
        engine.symbolic_memory = tuple(symbolic_memory)
    preprocess = PreprocessConfig(
        slicing=args.slicing,
        rewrite=args.rewrite,
        intervals=args.intervals,
        unsat_cores=args.unsat_cores,
        trail_reuse=args.trail_reuse,
        conflict_budget=args.conflict_budget,
        propagation_budget=args.propagation_budget,
        wall_budget=args.wall_budget,
        core_budget=args.core_budget,
        certify=args.certify,
        proof_log=args.proof_log,
    )
    faults = None
    if args.inject_faults:
        try:
            faults = FaultPlan.parse(args.inject_faults)
        except ValueError as error:
            raise SystemExit(f"bad --inject-faults spec: {error}")
    checkpoint_dir = args.resume if args.resume else args.checkpoint
    result = Explorer(
        engine,
        strategy=args.strategy,
        max_paths=args.max_paths,
        seed=args.seed,
        jobs=args.jobs,
        use_cache=args.query_cache,
        preprocess=preprocess,
        staging=args.staging,
        superblocks=args.superblocks,
        snapshots=args.snapshots,
        checkpoint_dir=checkpoint_dir,
        checkpoint_interval=args.checkpoint_interval,
        resume=bool(args.resume),
        faults=faults,
        deadline=args.deadline,
        memory_budget_mb=args.memory_budget,
        store_dir=args.store,
    ).explore()
    print(result.summary())
    if args.store:
        stats = result.solver_stats
        print(
            f"persistent store: {stats.get('store_hits', 0)} warm hits, "
            f"{stats.get('store_stores', 0)} artifacts written, "
            f"{stats.get('store_quarantines', 0)} quarantined, "
            f"{stats.get('store_skews', 0)} version-skewed, "
            f"{stats.get('store_disabled', 0)} tiers disabled"
        )
    if args.certify:
        stats = result.solver_stats
        print(
            f"certified results: {result.certified_paths} paths replayed "
            f"({result.certificate_failures} failed), "
            f"{stats.get('certified_sat', 0)} SAT models evaluated, "
            f"{stats.get('certified_unsat', 0)} UNSAT proofs checked, "
            f"{stats.get('certify_failures', 0)} certification failures, "
            f"{stats.get('cache_quarantines', 0)} cache quarantines"
        )
        for message in result.certificate_errors:
            print(f"  CERTIFICATE FAILURE: {message}")
    if args.stats:
        print("query pipeline statistics:")
        print(f"  queries answered     : {result.num_queries} solved, "
              f"{result.cache_hits} from cache, "
              f"{result.fast_path_answers} fast-path, "
              f"{result.pruned_queries} pruned, "
              f"{result.unknown_queries} unknown")
        print(f"  SAT-core solve() calls: {result.sat_solves}")
        for key in sorted(result.solver_stats):
            print(f"  {key:21s}: {result.solver_stats[key]}")
        if result.snapshot_stats:
            print("snapshot statistics:")
            print(f"  instructions executed: "
                  f"{result.executed_instructions} of "
                  f"{result.total_instructions} "
                  f"({result.saved_instructions} skipped by "
                  f"{result.resumed_runs} resumed runs)")
            for key in sorted(result.snapshot_stats):
                print(f"  {key:21s}: {result.snapshot_stats[key]}")
        if result.superblock_stats:
            print("superblock statistics:")
            print(f"  block instructions   : "
                  f"{result.superblock_instructions} of "
                  f"{result.total_instructions} "
                  f"({result.superblock_hits} block dispatches)")
            for key in sorted(result.superblock_stats):
                print(f"  {key:21s}: {result.superblock_stats[key]}")
        if result.governor_stats or result.degradations:
            print("memory governor statistics:")
            print(f"  degradation rungs    : {result.degradations}")
            for key in sorted(result.governor_stats):
                print(f"  {key:21s}: {result.governor_stats[key]}")
        if result.hung_workers or result.deadline_expired:
            print("anytime statistics:")
            print(f"  hung workers killed  : {result.hung_workers}")
            print(f"  deadline expired     : {result.deadline_expired}")
            print(f"  incomplete paths     : {result.incomplete_paths}")
    for path in result.paths[: args.show_paths]:
        marker = "FAIL" if path.is_assertion_failure else f"exit={path.exit_code}"
        print(f"  path {path.index:4d}: {marker:10s} {path.assignment}")
    if result.num_paths > args.show_paths:
        print(f"  ... and {result.num_paths - args.show_paths} more")
    failures = result.assertion_failures
    if failures:
        print(f"{len(failures)} assertion failure(s) found")
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument(
        "--isa", choices=sorted(_ISA_FACTORIES), default="rv32im",
        help="instruction set (default rv32im)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_assemble = sub.add_parser("assemble", help="assemble to ELF32")
    p_assemble.add_argument("input")
    p_assemble.add_argument("-o", "--output", required=True)
    p_assemble.set_defaults(func=_cmd_assemble)

    p_run = sub.add_parser("run", help="run concretely (emulator)")
    p_run.add_argument("input")
    p_run.add_argument("--trace", action="store_true",
                       help="print a per-instruction trace")
    p_run.add_argument("--max-steps", type=int, default=10_000_000)
    p_run.set_defaults(func=_cmd_run)

    p_disasm = sub.add_parser("disasm", help="disassemble the text segment")
    p_disasm.add_argument("input")
    p_disasm.set_defaults(func=_cmd_disasm)

    p_explore = sub.add_parser("explore", help="symbolic path exploration")
    p_explore.add_argument("input")
    p_explore.add_argument(
        "--engine", default="binsym",
        choices=["binsym", "binsec", "symex-vp", "angr", "angr-buggy"],
    )
    p_explore.add_argument("--strategy", default="dfs",
                           choices=["dfs", "bfs", "random", "coverage"])
    p_explore.add_argument("--symbolic", action="append", metavar="ADDR:LEN",
                           help="mark a memory region symbolic")
    p_explore.add_argument("--jobs", type=int, default=1, metavar="N",
                           help="explore on N worker processes (default 1)")
    p_explore.add_argument("--seed", type=int, default=0,
                           help="seed for the random search strategy")
    p_explore.add_argument("--no-query-cache", dest="query_cache",
                           action="store_false", default=True,
                           help="disable the whole query layer: cross-path "
                                "cache AND preprocessing pipeline (plain "
                                "solver; --no-* pipeline flags are moot)")
    p_explore.add_argument("--no-slicing", dest="slicing",
                           action="store_false", default=True,
                           help="disable independence slicing of queries")
    p_explore.add_argument("--no-rewrite", dest="rewrite",
                           action="store_false", default=True,
                           help="disable word-level query rewriting")
    p_explore.add_argument("--no-intervals", dest="intervals",
                           action="store_false", default=True,
                           help="disable the interval fast path")
    p_explore.add_argument("--no-unsat-cores", dest="unsat_cores",
                           action="store_false", default=True,
                           help="disable assumption-level UNSAT cores "
                                "(the cache falls back to whole-query "
                                "UNSAT sets for subsumption)")
    p_explore.add_argument("--no-trail-reuse", dest="trail_reuse",
                           action="store_false", default=True,
                           help="disable shared-assumption-prefix trail "
                                "reuse in the CDCL core (every query "
                                "re-propagates from decision level 0)")
    p_explore.add_argument("--no-staging", dest="staging",
                           action="store_false", default=True,
                           help="disable staged semantics execution "
                                "(compiled per-instruction plans); the "
                                "specification is re-interpreted every step")
    p_explore.add_argument("--no-superblocks", dest="superblocks",
                           action="store_false", default=True,
                           help="disable superblock trace compilation: "
                                "hot straight-line sequences execute "
                                "one compiled plan per step instead of "
                                "a stitched multi-instruction block")
    p_explore.add_argument("--no-snapshots", dest="snapshots",
                           action="store_false", default=True,
                           help="disable snapshot-resumed exploration: "
                                "every flipped branch re-executes the SUT "
                                "from the entry point instead of resuming "
                                "at the divergence point")
    p_explore.add_argument("--conflict-budget", type=int, default=None,
                           metavar="N",
                           help="per-query CDCL conflict budget: a query "
                                "exceeding it answers UNKNOWN (counted, "
                                "never flipped) instead of running forever")
    p_explore.add_argument("--propagation-budget", type=int, default=None,
                           metavar="N",
                           help="per-query CDCL propagation budget (sound "
                                "degradation, like --conflict-budget)")
    p_explore.add_argument("--solver-wall-budget", dest="wall_budget",
                           type=float, default=None, metavar="SECS",
                           help="per-solve CDCL wall-clock budget in "
                                "seconds: a solve exceeding it answers "
                                "UNKNOWN (sound degradation, like "
                                "--conflict-budget)")
    p_explore.add_argument("--core-budget", type=int, default=8, metavar="N",
                           help="extra solves UNSAT-core minimization may "
                                "spend shrinking a core (default 8)")
    p_explore.add_argument("--deadline", type=float, default=None,
                           metavar="SECS",
                           help="global exploration deadline in seconds: "
                                "when it fires, unexplored frontier items "
                                "are counted into incomplete_paths and "
                                "checkpointed (a --resume continues the "
                                "cut campaign to the full path set)")
    p_explore.add_argument("--memory-budget", type=int, default=None,
                           metavar="MB",
                           help="per-process RSS budget in megabytes: "
                                "under pressure the memory governor walks "
                                "a degradation ladder (shrink snapshot "
                                "pool, tighten caches, disable snapshot "
                                "capture) — each rung counted, path set "
                                "invariant")
    p_explore.add_argument("--checkpoint", metavar="DIR", default=None,
                           help="write a crash-safe exploration journal to "
                                "DIR (atomic-rename checkpoint.json)")
    p_explore.add_argument("--checkpoint-interval", type=int, default=1,
                           metavar="PATHS",
                           help="checkpoint every N recorded paths "
                                "(default 1)")
    p_explore.add_argument("--resume", metavar="DIR", default=None,
                           help="resume a killed campaign from DIR's "
                                "journal (implies --checkpoint DIR); "
                                "completed paths are not re-executed")
    p_explore.add_argument("--store", metavar="DIR", default=None,
                           help="persistent cross-run artifact store: "
                                "query verdicts (models, UNSAT cores) "
                                "and path certificates are written to "
                                "DIR and verified warm hits served from "
                                "it on later runs; any torn/corrupt/"
                                "skewed file is quarantined and "
                                "re-solved, any I/O failure disables "
                                "the tier for the run (see "
                                "tools/store_fsck.py)")
    p_explore.add_argument("--certify", action="store_true", default=False,
                           help="certify every reported answer: UNSAT "
                                "answers are DRAT-checked, SAT models "
                                "re-evaluated, and every path replayed "
                                "under the unstaged reference evaluator; "
                                "failures are counted and downgraded, "
                                "never trusted")
    p_explore.add_argument("--no-proof-log", dest="proof_log",
                           action="store_false", default=True,
                           help="disable DRAT clause logging in the CDCL "
                                "core (ablation; --certify then falls "
                                "back to re-derivation where possible)")
    p_explore.add_argument("--inject-faults", metavar="SPEC", default=None,
                           help="deterministic chaos schedule, e.g. "
                                "'kill=30,unknown=20,evict=50,hiccup=10,"
                                "corrupt=30,hang=10,memhog=20,torn=20,"
                                "iofail=5,stop=5,seed=1' (rates in "
                                "percent; stop interrupts after N "
                                "paths; hang wedges pool workers for "
                                "the watchdog to kill, memhog leaks "
                                "memory to drive the governor, torn/"
                                "iofail tear and fail --store I/O)")
    p_explore.add_argument("--stats", action="store_true",
                           help="print detailed solver/pipeline statistics")
    p_explore.add_argument("--max-paths", type=int, default=100_000)
    p_explore.add_argument("--max-steps", type=int, default=1_000_000)
    p_explore.add_argument("--show-paths", type=int, default=20)
    p_explore.set_defaults(func=_cmd_explore)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
