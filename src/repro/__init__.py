"""BinSym reproduction: symbolic execution of RISC-V binaries from formal ISA semantics.

Reproduction of "Accurate and Extensible Symbolic Execution of Binary
Code based on Formal ISA Semantics" (DATE 2025).  See DESIGN.md for the
system inventory and EXPERIMENTS.md for the paper-vs-measured record.

Layering (bottom up):

* :mod:`repro.smt` — QF_BV terms + bit-blasting + CDCL SAT (Z3 stand-in)
* :mod:`repro.spec` — executable formal ISA specification (LibRISCV analogue)
* :mod:`repro.arch` — value-type-generic hardware state components
* :mod:`repro.asm` / :mod:`repro.loader` — RV32IM assembler and ELF32 loader
* :mod:`repro.concrete` — concrete modular interpreter (emulator)
* :mod:`repro.core` — BinSym: the symbolic modular interpreter + explorer
* :mod:`repro.baselines` — angr-, BINSEC- and SymEx-VP-style engines
* :mod:`repro.eval` — Table I / Fig. 5 / Fig. 6 experiment drivers
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
