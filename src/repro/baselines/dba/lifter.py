"""RV32IM to DBA lifter (the correct, bug-free baseline translation).

BINSEC's RISC-V front-end found all paths in the paper's Table I, so
this lifter has no seedable bugs — but it is still a *hand-written*
translation, structurally independent from the formal specification, and
the differential test-suite checks it instruction-by-instruction against
the spec-derived interpreter.
"""

from __future__ import annotations

from ...spec import fields
from ...spec.isa import ISA
from .ir import Asgn, AsgnTmp, Bin, Cst, DJmp, DbaBlock, If, Ite, Jmp, Ld, Reg, St, Stop, Sys, Tmp, Un

__all__ = ["DbaLifter"]

_ZERO = Cst(0)
_ALL_ONES = Cst(0xFFFFFFFF)


class DbaLifter:
    """Lift one instruction word to a :class:`DbaBlock`."""

    def __init__(self, isa: ISA):
        self.decoder = isa.decoder

    def lift(self, word: int, pc: int) -> DbaBlock:
        decoded = self.decoder.decode(word, pc)
        method = getattr(self, f"_lift_{decoded.name}", None)
        if method is None:
            raise NotImplementedError(f"DBA lifter: no translation for {decoded.name}")
        return DbaBlock(pc, tuple(method(word, pc)))

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _addr_i(word):
        return Bin("add", Reg(fields.rs1(word)), Cst(fields.imm_i(word)))

    @staticmethod
    def _addr_s(word):
        return Bin("add", Reg(fields.rs1(word)), Cst(fields.imm_s(word)))

    # -- U/J types -----------------------------------------------------------

    def _lift_lui(self, word, pc):
        return [Asgn(fields.rd(word), Cst(fields.imm_u(word)))]

    def _lift_auipc(self, word, pc):
        return [Asgn(fields.rd(word), Cst((pc + fields.imm_u(word)) & 0xFFFFFFFF))]

    def _lift_jal(self, word, pc):
        return [
            Asgn(fields.rd(word), Cst((pc + 4) & 0xFFFFFFFF)),
            Jmp((pc + fields.imm_j(word)) & 0xFFFFFFFF),
        ]

    def _lift_jalr(self, word, pc):
        # The target must be computed *before* the link write: rs1 may
        # be the same register as rd.  (Getting this ordering wrong is
        # exactly the kind of lifter bug the differential test-suite
        # exists to catch — it found an earlier version of this code.)
        target = Bin("and", self._addr_i(word), Cst(0xFFFFFFFE))
        return [
            AsgnTmp(target),
            Asgn(fields.rd(word), Cst((pc + 4) & 0xFFFFFFFF)),
            DJmp(Tmp()),
        ]

    # -- branches --------------------------------------------------------------

    def _branch(self, word, pc, op, swapped=False):
        rs1, rs2 = Reg(fields.rs1(word)), Reg(fields.rs2(word))
        if swapped:
            rs1, rs2 = rs2, rs1
        cond = Bin(op, rs1, rs2, width=1)
        return [If(cond, (pc + fields.imm_b(word)) & 0xFFFFFFFF)]

    def _lift_beq(self, word, pc):
        return self._branch(word, pc, "eq")

    def _lift_bne(self, word, pc):
        return self._branch(word, pc, "ne")

    def _lift_blt(self, word, pc):
        return self._branch(word, pc, "slt")

    def _lift_bge(self, word, pc):
        return self._branch(word, pc, "sle", swapped=True)

    def _lift_bltu(self, word, pc):
        return self._branch(word, pc, "ult")

    def _lift_bgeu(self, word, pc):
        return self._branch(word, pc, "ule", swapped=True)

    # -- loads/stores ---------------------------------------------------------

    def _load(self, word, width, kind):
        value = Ld(self._addr_i(word), width)
        if width < 32:
            value = Un(kind, value, amount=32 - width)
        return [Asgn(fields.rd(word), value)]

    def _lift_lb(self, word, pc):
        return self._load(word, 8, "sext")

    def _lift_lh(self, word, pc):
        return self._load(word, 16, "sext")

    def _lift_lw(self, word, pc):
        return self._load(word, 32, "zext")

    def _lift_lbu(self, word, pc):
        return self._load(word, 8, "zext")

    def _lift_lhu(self, word, pc):
        return self._load(word, 16, "zext")

    def _store(self, word, width):
        value = Reg(fields.rs2(word))
        if width < 32:
            value = Un("restrict", value, high=width - 1, low=0)
        return [St(self._addr_s(word), value, width)]

    def _lift_sb(self, word, pc):
        return self._store(word, 8)

    def _lift_sh(self, word, pc):
        return self._store(word, 16)

    def _lift_sw(self, word, pc):
        return self._store(word, 32)

    # -- OP-IMM ------------------------------------------------------------------

    def _op_imm(self, word, op):
        expr = Bin(op, Reg(fields.rs1(word)), Cst(fields.imm_i(word)))
        return [Asgn(fields.rd(word), expr)]

    def _lift_addi(self, word, pc):
        return self._op_imm(word, "add")

    def _lift_xori(self, word, pc):
        return self._op_imm(word, "xor")

    def _lift_ori(self, word, pc):
        return self._op_imm(word, "or")

    def _lift_andi(self, word, pc):
        return self._op_imm(word, "and")

    def _lift_slti(self, word, pc):
        cond = Bin("slt", Reg(fields.rs1(word)), Cst(fields.imm_i(word)), width=1)
        return [Asgn(fields.rd(word), Un("zext", cond, amount=31))]

    def _lift_sltiu(self, word, pc):
        cond = Bin("ult", Reg(fields.rs1(word)), Cst(fields.imm_i(word)), width=1)
        return [Asgn(fields.rd(word), Un("zext", cond, amount=31))]

    def _shift_imm(self, word, op):
        expr = Bin(op, Reg(fields.rs1(word)), Cst(fields.shamt(word)))
        return [Asgn(fields.rd(word), expr)]

    def _lift_slli(self, word, pc):
        return self._shift_imm(word, "shl")

    def _lift_srli(self, word, pc):
        return self._shift_imm(word, "lshr")

    def _lift_srai(self, word, pc):
        return self._shift_imm(word, "ashr")

    # -- OP ---------------------------------------------------------------------

    def _op(self, word, op):
        expr = Bin(op, Reg(fields.rs1(word)), Reg(fields.rs2(word)))
        return [Asgn(fields.rd(word), expr)]

    def _lift_add(self, word, pc):
        return self._op(word, "add")

    def _lift_sub(self, word, pc):
        return self._op(word, "sub")

    def _lift_xor(self, word, pc):
        return self._op(word, "xor")

    def _lift_or(self, word, pc):
        return self._op(word, "or")

    def _lift_and(self, word, pc):
        return self._op(word, "and")

    def _lift_slt(self, word, pc):
        cond = Bin("slt", Reg(fields.rs1(word)), Reg(fields.rs2(word)), width=1)
        return [Asgn(fields.rd(word), Un("zext", cond, amount=31))]

    def _lift_sltu(self, word, pc):
        cond = Bin("ult", Reg(fields.rs1(word)), Reg(fields.rs2(word)), width=1)
        return [Asgn(fields.rd(word), Un("zext", cond, amount=31))]

    def _shift_reg(self, word, op):
        amount = Bin("and", Reg(fields.rs2(word)), Cst(0x1F))
        return [Asgn(fields.rd(word), Bin(op, Reg(fields.rs1(word)), amount))]

    def _lift_sll(self, word, pc):
        return self._shift_reg(word, "shl")

    def _lift_srl(self, word, pc):
        return self._shift_reg(word, "lshr")

    def _lift_sra(self, word, pc):
        return self._shift_reg(word, "ashr")

    # -- M extension ---------------------------------------------------------------

    def _lift_mul(self, word, pc):
        return self._op(word, "mul")

    def _mulh(self, word, lhs_kind, rhs_kind):
        lhs = Un(lhs_kind, Reg(fields.rs1(word)), amount=32)
        rhs = Un(rhs_kind, Reg(fields.rs2(word)), amount=32)
        product = Bin("mul", lhs, rhs, width=64)
        return [Asgn(fields.rd(word), Un("restrict", product, high=63, low=32))]

    def _lift_mulh(self, word, pc):
        return self._mulh(word, "sext", "sext")

    def _lift_mulhu(self, word, pc):
        return self._mulh(word, "zext", "zext")

    def _lift_mulhsu(self, word, pc):
        return self._mulh(word, "sext", "zext")

    def _lift_divu(self, word, pc):
        rs1, rs2 = Reg(fields.rs1(word)), Reg(fields.rs2(word))
        zero = Bin("eq", rs2, _ZERO, width=1)
        return [Asgn(fields.rd(word), Ite(zero, _ALL_ONES, Bin("udiv", rs1, rs2)))]

    def _lift_div(self, word, pc):
        rs1, rs2 = Reg(fields.rs1(word)), Reg(fields.rs2(word))
        zero = Bin("eq", rs2, _ZERO, width=1)
        overflow = Bin(
            "and",
            Un("zext", Bin("eq", rs1, Cst(0x80000000), width=1), amount=31),
            Un("zext", Bin("eq", rs2, _ALL_ONES, width=1), amount=31),
        )
        inner = Ite(
            Bin("ne", overflow, _ZERO, width=1),
            Cst(0x80000000),
            Bin("sdiv", rs1, rs2),
        )
        return [Asgn(fields.rd(word), Ite(zero, _ALL_ONES, inner))]

    def _lift_remu(self, word, pc):
        rs1, rs2 = Reg(fields.rs1(word)), Reg(fields.rs2(word))
        zero = Bin("eq", rs2, _ZERO, width=1)
        return [Asgn(fields.rd(word), Ite(zero, rs1, Bin("urem", rs1, rs2)))]

    def _lift_rem(self, word, pc):
        rs1, rs2 = Reg(fields.rs1(word)), Reg(fields.rs2(word))
        zero = Bin("eq", rs2, _ZERO, width=1)
        overflow = Bin(
            "and",
            Un("zext", Bin("eq", rs1, Cst(0x80000000), width=1), amount=31),
            Un("zext", Bin("eq", rs2, _ALL_ONES, width=1), amount=31),
        )
        inner = Ite(
            Bin("ne", overflow, _ZERO, width=1), _ZERO, Bin("srem", rs1, rs2)
        )
        return [Asgn(fields.rd(word), Ite(zero, rs1, inner))]

    # -- system -----------------------------------------------------------------------

    def _lift_fence(self, word, pc):
        return []

    def _lift_ecall(self, word, pc):
        return [Sys()]

    def _lift_ebreak(self, word, pc):
        return [Stop()]
