"""A DBA-flavoured intermediate representation (BINSEC's IR).

DBA (Dynamic Bitvector Automata, Djoudi & Bardin, CAV'11/TACAS'15)
represents instructions as small blocks of assignments and guarded
jumps over width-annotated bitvector expressions — no temporaries and no
implicit state.  This module models the subset needed for RV32IM.

Compared to the VEX model, DBA blocks are *compact*: one assignment per
register update with fully nested expressions.  The corresponding engine
(:mod:`repro.baselines.dba.engine`) exploits that with a persistent
lifted-block cache, which is one of the reasons the BINSEC-style engine
is the fastest in the Fig. 6 reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

__all__ = [
    "Cst",
    "Reg",
    "Tmp",
    "Ld",
    "Un",
    "Bin",
    "Ite",
    "DbaExpr",
    "Asgn",
    "AsgnTmp",
    "St",
    "If",
    "Jmp",
    "DJmp",
    "Sys",
    "Stop",
    "DbaStmt",
    "DbaBlock",
]


@dataclass(frozen=True)
class Cst:
    value: int
    width: int = 32


@dataclass(frozen=True)
class Reg:
    index: int


@dataclass(frozen=True)
class Tmp:
    """The block-local temporary (DBA blocks need at most one)."""


@dataclass(frozen=True)
class Ld:
    addr: "DbaExpr"
    width: int


@dataclass(frozen=True)
class Un:
    """Unary op: ``not``/``neg`` or width ops ``zext``/``sext`` (by
    ``amount``) and ``restrict`` (bit slice [high:low])."""

    op: str
    arg: "DbaExpr"
    amount: int = 0
    high: int = 0
    low: int = 0


@dataclass(frozen=True)
class Bin:
    """Binary op; names match the specification domain ops."""

    op: str
    lhs: "DbaExpr"
    rhs: "DbaExpr"
    width: int = 32


@dataclass(frozen=True)
class Ite:
    cond: "DbaExpr"
    then_expr: "DbaExpr"
    else_expr: "DbaExpr"


DbaExpr = Union[Cst, Reg, Tmp, Ld, Un, Bin, Ite]


@dataclass(frozen=True)
class Asgn:
    reg: int
    expr: DbaExpr


@dataclass(frozen=True)
class AsgnTmp:
    """Assign the block-local temporary."""

    expr: DbaExpr


@dataclass(frozen=True)
class St:
    addr: DbaExpr
    value: DbaExpr
    width: int


@dataclass(frozen=True)
class If:
    """Guarded goto: if cond then pc := target."""

    cond: DbaExpr
    target: int


@dataclass(frozen=True)
class Jmp:
    target: int


@dataclass(frozen=True)
class DJmp:
    """Dynamic jump: pc := expr."""

    expr: DbaExpr


@dataclass(frozen=True)
class Sys:
    """Environment call."""


@dataclass(frozen=True)
class Stop:
    """Trap/breakpoint (assertion failure marker)."""


DbaStmt = Union[Asgn, AsgnTmp, St, If, Jmp, DJmp, Sys, Stop]


@dataclass(frozen=True)
class DbaBlock:
    """One instruction's DBA: statements then implicit pc+4 fall-through
    (unless a Jmp/DJmp/If fired)."""

    pc: int
    stmts: tuple[DbaStmt, ...]
