"""BINSEC-style baseline: DBA IR, lifter and optimized engine."""

from .engine import DbaEngine
from .lifter import DbaLifter

__all__ = ["DbaEngine", "DbaLifter"]
