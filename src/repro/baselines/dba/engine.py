"""BINSEC-style symbolic execution engine over DBA.

Models the mature/optimized end of the Fig. 6 spectrum with three
honest mechanisms (each separately measurable via the ablation
benchmarks):

* a persistent lifted-block cache — every instruction is translated
  exactly once per exploration, not once per visit;
* the concolic concrete fast path — terms are only built on symbolic
  dataflow (``force_terms=False``);
* compact DBA blocks — one nested expression per register update, no
  temporaries, so interpretation touches few Python objects.
"""

from __future__ import annotations

from ...arch.hart import HaltReason
from ...smt import terms as T
from ..common import ConcolicMachine
from ...core.symvalue import SymValue
from .ir import Asgn, AsgnTmp, Bin, Cst, DJmp, DbaBlock, If, Ite, Jmp, Ld, Reg, St, Stop, Sys, Tmp, Un
from .lifter import DbaLifter

__all__ = ["DbaEngine"]


class DbaEngine(ConcolicMachine):
    """Concolic interpreter for DBA blocks with a persistent lift cache."""

    name = "binsec-like"

    def __init__(self, isa, image, block_cache=True, **kwargs):
        kwargs.setdefault("force_terms", False)
        super().__init__(isa, image, **kwargs)
        self.lifter = DbaLifter(isa)
        self.block_cache_enabled = block_cache
        self._block_cache: dict[int, DbaBlock] = {}
        self._tmp: SymValue = SymValue(0, 32)

    def _block(self, pc: int) -> DbaBlock:
        if self.block_cache_enabled:
            block = self._block_cache.get(pc)
            if block is None:
                block = self.lifter.lift(self.memory.read(pc, 32), pc)
                self._block_cache[pc] = block
            return block
        return self.lifter.lift(self.memory.read(pc, 32), pc)

    def step(self) -> None:
        block = self._block(self.pc)
        next_pc = (self.pc + 4) & 0xFFFFFFFF
        for stmt in block.stmts:
            if isinstance(stmt, Asgn):
                self.write_reg(stmt.reg, self._eval(stmt.expr))
            elif isinstance(stmt, AsgnTmp):
                self._tmp = self._eval(stmt.expr)
            elif isinstance(stmt, St):
                self.store_value(self._eval(stmt.addr), self._eval(stmt.value), stmt.width)
            elif isinstance(stmt, If):
                cond = self._eval(stmt.cond)
                taken = bool(cond.concrete)
                self.record_branch(cond, taken)
                if taken:
                    next_pc = stmt.target
                break
            elif isinstance(stmt, Jmp):
                next_pc = stmt.target
                break
            elif isinstance(stmt, DJmp):
                target = self._eval(stmt.expr)
                if target.term is not None and not target.term.is_const:
                    pinned = T.eq(target.term, T.bv(target.concrete, 32))
                    self.trace.add_assumption(pinned, self.pc)
                next_pc = target.concrete
                break
            elif isinstance(stmt, Sys):
                self.instret += 1
                self.pc = next_pc
                self.do_ecall()
                return
            elif isinstance(stmt, Stop):
                self.instret += 1
                self._halt(HaltReason.EBREAK)
                return
            else:  # pragma: no cover - exhaustive over DbaStmt
                raise NotImplementedError(f"unknown statement {stmt!r}")
        self.instret += 1
        self.pc = next_pc

    # ------------------------------------------------------------------

    def _eval(self, expr) -> SymValue:
        domain = self.domain
        if isinstance(expr, Cst):
            return domain.const(expr.value, expr.width)
        if isinstance(expr, Reg):
            return self.read_reg(expr.index)
        if isinstance(expr, Tmp):
            return self._tmp
        if isinstance(expr, Bin):
            lhs = self._eval(expr.lhs)
            rhs = self._eval(expr.rhs)
            if expr.width == 1:
                return domain.cmpop(expr.op, lhs, rhs, lhs.width)
            return domain.binop(expr.op, lhs, rhs, expr.width)
        if isinstance(expr, Un):
            arg = self._eval(expr.arg)
            if expr.op in ("zext", "sext"):
                return domain.ext(expr.op, arg, expr.amount, arg.width)
            if expr.op == "restrict":
                return domain.extract(arg, expr.high, expr.low)
            if expr.op == "not":
                return domain.unop("not", arg, arg.width)
            if expr.op == "neg":
                return domain.unop("neg", arg, arg.width)
            raise NotImplementedError(f"unknown unary op {expr.op}")
        if isinstance(expr, Ld):
            return self.load_value(self._eval(expr.addr), expr.width)
        if isinstance(expr, Ite):
            cond = self._eval(expr.cond)
            then_value = self._eval(expr.then_expr)
            else_value = self._eval(expr.else_expr)
            return domain.ite(cond, then_value, else_value, then_value.width)
        raise NotImplementedError(f"unknown DBA expression {expr!r}")
