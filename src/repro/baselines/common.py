"""Shared concolic machinery for the IR-based baseline engines.

The angr-style (VEX IR) and BINSEC-style (DBA IR) engines differ from
BinSym in their *translation* methodology — they lift binary code to an
IR and symbolize the IR — but they share the run/state plumbing: byte
memory with shadow terms, symbolic input management, the ecall ABI and
path-trace recording.  Keeping that plumbing identical (and driving all
engines with the same :class:`repro.core.explorer.Explorer` and the same
SMT solver) isolates the translation step, mirroring the paper's
experimental setup ("all tested SE engines have been configured to use
the same version of Z3").
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..arch.hart import HaltReason
from ..arch.memory import ByteMemory, ShadowMemory
from ..concrete.syscalls import SYS_EXIT, SYS_MAKE_SYMBOLIC, SYS_WRITE
from ..loader.image import Image
from ..smt import terms as T
from ..spec.isa import ISA
from ..core.concretize import ConcretizationPolicy, concretize_address
from ..core.executor import RunResult
from ..core.state import InputAssignment, PathTrace, SymbolicInput
from ..core.symvalue import SymDomain, SymValue

__all__ = ["ConcolicMachine"]

_WORD = 0xFFFFFFFF


class ConcolicMachine:
    """Base class: concolic machine state + executor interface.

    Subclasses implement :meth:`step` (fetch/translate/interpret one
    unit of work) and may override :meth:`on_reset`.
    """

    name = "baseline"

    def __init__(
        self,
        isa: ISA,
        image: Image,
        symbolic_memory: Iterable[tuple[int, int]] = (),
        symbolic_registers: Iterable[int] = (),
        concretization: ConcretizationPolicy = ConcretizationPolicy.PIN,
        force_terms: bool = False,
        max_steps: int = 1_000_000,
    ):
        self.isa = isa
        self.image = image
        self.symbolic_memory = tuple(symbolic_memory)
        self.symbolic_registers = tuple(symbolic_registers)
        self.concretization = concretization
        self.domain = SymDomain(force_terms=force_terms)
        self.max_steps = max_steps
        self.inputs: dict[int, SymbolicInput] = {}
        self._register_vars: dict[int, T.Term] = {
            index: T.bv_var(f"reg_{index}", 32) for index in self.symbolic_registers
        }
        # Per-run state:
        self.memory = ByteMemory()
        self.shadow: ShadowMemory[T.Term] = ShadowMemory()
        self.regs: list[SymValue] = [SymValue(0, 32)] * 32
        self.pc = 0
        self.trace = PathTrace()
        self.assignment = InputAssignment()
        self.stdout = bytearray()
        self.halted = False
        self.halt_reason: Optional[str] = None
        self.exit_code: Optional[int] = None
        self.instret = 0

    # ------------------------------------------------------------------
    # Executor interface
    # ------------------------------------------------------------------

    def execute(self, assignment: InputAssignment) -> RunResult:
        self._reset(assignment)
        for _ in range(self.max_steps):
            if self.halted:
                break
            self.step()
        else:
            self._halt(HaltReason.OUT_OF_FUEL)
        return RunResult(
            trace=self.trace,
            halt_reason=self.halt_reason,
            exit_code=self.exit_code,
            instret=self.instret,
            assignment=assignment,
            stdout=bytes(self.stdout),
            final_pc=self.pc,
        )

    def input_variables(self) -> list[T.Term]:
        variables = [sym_input.variable for sym_input in self.inputs.values()]
        variables.extend(self._register_vars.values())
        return variables

    def step(self) -> None:
        raise NotImplementedError

    def on_reset(self) -> None:
        """Subclass hook invoked after per-run state initialization."""

    # ------------------------------------------------------------------
    # Per-run state management
    # ------------------------------------------------------------------

    def _reset(self, assignment: InputAssignment) -> None:
        self.memory = ByteMemory()
        self.image.load_into(self.memory)
        self.shadow = ShadowMemory()
        self.regs = [SymValue(0, 32)] * 32
        self.pc = self.image.entry
        self.trace = PathTrace()
        self.assignment = assignment
        self.stdout = bytearray()
        self.halted = False
        self.halt_reason = None
        self.exit_code = None
        self.instret = 0
        for sym_input in self.inputs.values():
            value = assignment.value_for(sym_input)
            self.memory.write_byte(sym_input.address, value)
            self.shadow.set(sym_input.address, sym_input.variable)
        for base, length in self.symbolic_memory:
            self.make_symbolic(base, length)
        for index, variable in self._register_vars.items():
            concrete = assignment.values.get(variable, 0)
            self.write_reg(index, SymValue(concrete, 32, variable))
        self.on_reset()

    def _halt(self, reason: str, exit_code: Optional[int] = None) -> None:
        self.halted = True
        self.halt_reason = reason
        self.exit_code = exit_code

    # ------------------------------------------------------------------
    # Register file semantics (x0 hardwired)
    # ------------------------------------------------------------------

    def read_reg(self, index: int) -> SymValue:
        if index == 0:
            return SymValue(0, 32)
        return self.regs[index]

    def write_reg(self, index: int, value: SymValue) -> None:
        if index != 0:
            self.regs[index] = value

    # ------------------------------------------------------------------
    # Symbolic input + memory
    # ------------------------------------------------------------------

    def make_symbolic(self, base: int, length: int) -> None:
        for offset in range(length):
            address = (base + offset) & _WORD
            sym_input = self.inputs.get(address)
            if sym_input is None:
                variable = T.bv_var(f"in_{address:08x}", 8)
                sym_input = SymbolicInput(
                    address, variable, self.memory.read_byte(address)
                )
                self.inputs[address] = sym_input
            value = self.assignment.value_for(sym_input)
            self.memory.write_byte(address, value)
            self.shadow.set(address, sym_input.variable)

    def load_value(self, address: SymValue, width: int) -> SymValue:
        concrete_addr = concretize_address(
            address, self.concretization, self.trace, self.pc
        )
        parts = []
        for i in range(width // 8):
            byte_addr = (concrete_addr + i) & _WORD
            concrete = self.memory.read_byte(byte_addr)
            parts.append(SymValue(concrete, 8, self.shadow.get(byte_addr)))
        return self.domain.concat_bytes(parts)

    def store_value(self, address: SymValue, value: SymValue, width: int) -> None:
        concrete_addr = concretize_address(
            address, self.concretization, self.trace, self.pc
        )
        for i in range(width // 8):
            byte_addr = (concrete_addr + i) & _WORD
            self.memory.write_byte(byte_addr, (value.concrete >> (8 * i)) & 0xFF)
            if value.term is None:
                self.shadow.set(byte_addr, None)
            else:
                self.shadow.set(byte_addr, T.extract(value.term, 8 * i + 7, 8 * i))

    # ------------------------------------------------------------------
    # Branch recording + environment calls
    # ------------------------------------------------------------------

    def record_branch(self, condition: SymValue, taken: bool) -> None:
        # Constant terms (possible under force_terms, where even pure
        # constants carry terms) are not symbolic decisions.
        if condition.term is not None and not condition.term.is_const:
            self.trace.add_branch(condition.condition_term(), self.pc, taken)

    def do_ecall(self) -> None:
        number = self.read_reg(17).concrete  # a7
        if number == SYS_EXIT:
            self._halt(HaltReason.EXIT, self.read_reg(10).concrete)
        elif number == SYS_WRITE:
            base = self.read_reg(11).concrete
            length = self.read_reg(12).concrete
            self.stdout.extend(self.memory.read_bytes(base, length))
            self.write_reg(10, SymValue(length, 32))
        elif number == SYS_MAKE_SYMBOLIC:
            self.make_symbolic(self.read_reg(10).concrete, self.read_reg(11).concrete)
        else:
            raise ValueError(f"unknown syscall number {number}")
