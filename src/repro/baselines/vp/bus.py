"""SystemC-TLM-style bus and simulation kernel (SymEx-VP substrate).

SymEx-VP executes software inside a SystemC virtual prototype: memory
accesses are TLM transactions routed over a bus, and the SystemC kernel
advances simulated time with delta cycles.  The paper attributes
SymEx-VP's slowdown relative to BinSym to exactly this simulation
environment (Sect. V-B), so this module reproduces the *mechanism*: a
:class:`SimulationKernel` with a real event queue and a :class:`TlmBus`
that routes blocking transactions through address decoding and kernel
waits.  The payload values are concolic :class:`SymValue` objects, so
hardware models could observe symbolic data, which is the feature
SymEx-VP buys with this overhead.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = ["Transaction", "SimulationKernel", "TlmBus", "MemoryTarget"]


@dataclass
class Transaction:
    """A generic-payload-style bus transaction."""

    address: int
    width: int  # bits
    is_write: bool
    value: Optional[object] = None  # SymValue for writes / filled on reads
    response: str = "INCOMPLETE"
    latency: int = 1  # bus cycles


class SimulationKernel:
    """A miniature delta-cycle event scheduler (the 'SystemC kernel')."""

    def __init__(self) -> None:
        self.now = 0
        self._queue: list[tuple[int, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self.delta_cycles = 0

    def schedule(self, delay: int, callback: Callable[[], None]) -> None:
        heapq.heappush(self._queue, (self.now + delay, next(self._counter), callback))

    def wait(self, delay: int) -> None:
        """Advance simulated time, firing all due events (b_transport wait)."""
        target = self.now + delay
        while self._queue and self._queue[0][0] <= target:
            when, _, callback = heapq.heappop(self._queue)
            self.now = when
            self.delta_cycles += 1
            callback()
        self.now = target


@dataclass
class MemoryTarget:
    """A TLM target wrapping callbacks into the interpreter's memory."""

    base: int
    size: int
    read_fn: Callable[[int, int], object]
    write_fn: Callable[[int, object, int], None]
    latency: int = 1

    def covers(self, address: int) -> bool:
        return self.base <= address < self.base + self.size

    def transport(self, tx: Transaction, kernel: SimulationKernel) -> None:
        # The target-side process runs as a scheduled event after the
        # device latency elapses — the initiator blocks in wait() until
        # the kernel has delivered it (SystemC b_transport semantics).
        def deliver() -> None:
            if tx.is_write:
                self.write_fn(tx.address, tx.value, tx.width)
            else:
                tx.value = self.read_fn(tx.address, tx.width)
            tx.response = "OK"

        kernel.schedule(self.latency, deliver)
        kernel.wait(self.latency)


class TlmBus:
    """Address-decoding interconnect with blocking transport."""

    def __init__(self, kernel: SimulationKernel):
        self.kernel = kernel
        self.targets: list[MemoryTarget] = []
        self.transactions = 0

    def attach(self, target: MemoryTarget) -> None:
        self.targets.append(target)

    def transport(self, tx: Transaction) -> Transaction:
        """Blocking b_transport: route, wait bus latency, deliver."""
        self.transactions += 1
        self.kernel.wait(tx.latency)  # interconnect forwarding delay
        for target in self.targets:
            if target.covers(tx.address):
                target.transport(tx, self.kernel)
                if tx.response != "OK":
                    raise RuntimeError(f"bus error at {tx.address:#x}")
                return tx
        raise RuntimeError(f"bus decode error: no target at {tx.address:#x}")
