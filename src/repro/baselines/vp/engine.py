"""SymEx-VP-style engine: BinSym semantics inside a virtual prototype.

SymEx-VP is also *execution-based* (no IR lifting — it interprets
instructions directly, like BinSym), but the SUT runs inside a SystemC
virtual prototype: every memory access becomes a TLM bus transaction and
simulated time advances through the kernel's event queue.  We reproduce
that by subclassing BinSym's symbolic interpreter and routing its loads
and stores through :class:`repro.baselines.vp.bus.TlmBus`, plus a
one-cycle kernel wait per retired instruction (the per-instruction
quantum of the ISS inside the VP).

Path counts therefore match BinSym exactly — Table I — while wall-clock
time carries the virtual-prototype overhead — Fig. 6.
"""

from __future__ import annotations

from ...core.executor import BinSymExecutor
from ...core.interpreter import SymbolicInterpreter
from ...core.symvalue import SymValue
from .bus import MemoryTarget, SimulationKernel, TlmBus, Transaction

__all__ = ["VpInterpreter", "VpExecutor"]


class VpInterpreter(SymbolicInterpreter):
    """Symbolic interpreter whose memory sits behind a TLM bus."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.kernel = SimulationKernel()
        self.bus = TlmBus(self.kernel)
        # One flat RAM target covering the 32-bit space; a VP would
        # carve this into RAM/ROM/peripheral regions.
        self.bus.attach(
            MemoryTarget(
                base=0,
                size=1 << 32,
                read_fn=lambda addr, width: SymbolicInterpreter._load(self, addr, width),
                write_fn=lambda addr, value, width: SymbolicInterpreter._store(
                    self, addr, value, width
                ),
                latency=1,
            )
        )

    def _load(self, address: int, width: int) -> SymValue:
        tx = self.bus.transport(Transaction(address, width, is_write=False))
        return tx.value

    def _store(self, address: int, value: SymValue, width: int) -> None:
        self.bus.transport(Transaction(address, width, is_write=True, value=value))

    def step(self) -> None:
        # Instruction *fetch* also goes over the bus in a virtual
        # prototype — the ISS has no backdoor into the memory model.
        if not self.hart.halted:
            self.bus.transport(Transaction(self.hart.pc, 32, is_write=False))
        super().step()
        # Per-instruction time quantum of the ISS inside the VP.
        self.kernel.wait(1)


class VpExecutor(BinSymExecutor):
    """Executor adapter running the VP interpreter."""

    name = "symex-vp-like"

    def __init__(self, isa, image, **kwargs):
        super().__init__(isa, image, **kwargs)
        # Swap in the virtual-prototype interpreter, keeping the
        # executor configuration (symbolic regions etc.) intact.
        # Superblocks stay off: the VP issues one fetch transaction and
        # one time quantum per retired instruction, so step() must not
        # batch instructions.
        self.interpreter = VpInterpreter(
            isa,
            image,
            concretization=self.interpreter.concretization,
            superblocks=False,
        )

    def set_superblocks(self, superblocks: bool) -> None:
        """Ignore enables: the per-instruction fetch/quantum contract
        above is structural, not an ablation default the explorer's
        ``superblocks=True`` may override."""
        self.interpreter.set_superblocks(False)
