"""SymEx-VP-style baseline: BinSym semantics inside a TLM virtual prototype."""

from .bus import MemoryTarget, SimulationKernel, TlmBus, Transaction
from .engine import VpExecutor, VpInterpreter

__all__ = ["VpExecutor", "VpInterpreter", "TlmBus", "SimulationKernel", "MemoryTarget", "Transaction"]
