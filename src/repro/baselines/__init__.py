"""Baseline SE engines for the experimental comparison (Table I, Fig. 6).

Three engines model the comparison systems of the paper's evaluation:

* :mod:`repro.baselines.vexir` — angr-like: indirect IR-based via a
  VEX-style IR with a hand-written lifter (the five historical angr
  RISC-V lifter bugs can be seeded).
* :mod:`repro.baselines.dba` — BINSEC-like: DBA IR with an optimized,
  block-cached engine.
* :mod:`repro.baselines.vp` — SymEx-VP-like: execution-based inside a
  SystemC/TLM-style virtual prototype.

All engines share the explorer, solver and concolic state plumbing so
the comparison isolates the translation methodology.
"""

from .common import ConcolicMachine
from .dba import DbaEngine
from .vexir import FIVE_ANGR_BUGS, VexEngine
from .vp import VpExecutor

__all__ = ["ConcolicMachine", "DbaEngine", "VexEngine", "VpExecutor", "FIVE_ANGR_BUGS"]
