"""angr-style baseline: VEX-like IR, hand-written lifter, IR engine."""

from .engine import VexEngine
from .ir import IRSB, JumpKind
from .lifter import BUG_DESCRIPTIONS, FIVE_ANGR_BUGS, VexLifter

__all__ = ["VexEngine", "VexLifter", "FIVE_ANGR_BUGS", "BUG_DESCRIPTIONS", "IRSB", "JumpKind"]
