"""A VEX-flavoured intermediate representation.

Models the structure angr inherits from Valgrind's VEX: single-entry IR
super-blocks (here: one guest instruction per block, which is how the
RISC-V gymrat lifter in angr-platforms works too) over temporaries in
SSA form, ``Get``/``Put`` register accesses, expression trees with
explicitly sized operations, conditional side-``Exit`` statements and a
block-final ``next`` expression with a jump kind.

Only the RV32-relevant subset is modelled; operation names follow VEX
(``Iop_Add32`` is spelled ``Add32`` etc.).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

__all__ = [
    "Const",
    "RdTmp",
    "Get",
    "Binop",
    "Unop",
    "Load",
    "ITE",
    "IRExpr",
    "WrTmp",
    "Put",
    "Store",
    "Exit",
    "IMark",
    "IRStmt",
    "IRSB",
    "JumpKind",
    "BINOP_WIDTHS",
    "UNOP_WIDTHS",
]


class JumpKind:
    """VEX jump kinds used by the RV32 lifter."""

    BORING = "Ijk_Boring"
    CALL = "Ijk_Call"
    RET = "Ijk_Ret"
    SYSCALL = "Ijk_Sys_syscall"
    TRAP = "Ijk_SigTRAP"


@dataclass(frozen=True)
class Const:
    value: int
    width: int = 32


@dataclass(frozen=True)
class RdTmp:
    tmp: int


@dataclass(frozen=True)
class Get:
    """Guest register read (register index, not byte offset)."""

    reg: int


@dataclass(frozen=True)
class Binop:
    op: str
    lhs: "IRExpr"
    rhs: "IRExpr"


@dataclass(frozen=True)
class Unop:
    op: str
    arg: "IRExpr"


@dataclass(frozen=True)
class Load:
    addr: "IRExpr"
    width: int


@dataclass(frozen=True)
class ITE:
    cond: "IRExpr"
    iftrue: "IRExpr"
    iffalse: "IRExpr"


IRExpr = Union[Const, RdTmp, Get, Binop, Unop, Load, ITE]


@dataclass(frozen=True)
class WrTmp:
    tmp: int
    expr: IRExpr


@dataclass(frozen=True)
class Put:
    reg: int
    expr: IRExpr


@dataclass(frozen=True)
class Store:
    addr: IRExpr
    value: IRExpr
    width: int


@dataclass(frozen=True)
class Exit:
    """Conditional side exit to a constant target."""

    guard: IRExpr
    target: int


@dataclass(frozen=True)
class IMark:
    """Instruction boundary marker (address, length)."""

    addr: int
    length: int = 4


IRStmt = Union[WrTmp, Put, Store, Exit, IMark]


@dataclass(frozen=True)
class IRSB:
    """An IR (super-)block: statements + fall-through continuation."""

    stmts: tuple[IRStmt, ...]
    next: IRExpr
    jumpkind: str = JumpKind.BORING


#: Result widths of binary operations (operands are the same width
#: unless noted; Mull* take 32-bit operands and produce 64 bits).
BINOP_WIDTHS = {
    "Add32": 32,
    "Sub32": 32,
    "Mul32": 32,
    "MullS32": 64,
    "MullU32": 64,
    "MullSU32": 64,
    "DivU32": 32,
    "DivS32": 32,
    "ModU32": 32,
    "ModS32": 32,
    "And32": 32,
    "Or32": 32,
    "Xor32": 32,
    "Shl32": 32,
    "Shr32": 32,
    "Sar32": 32,
    "CmpEQ32": 1,
    "CmpNE32": 1,
    "CmpLT32U": 1,
    "CmpLE32U": 1,
    "CmpLT32S": 1,
    "CmpLE32S": 1,
}

#: (operand width, result width) of unary operations.
UNOP_WIDTHS = {
    "Not32": (32, 32),
    "8Uto32": (8, 32),
    "8Sto32": (8, 32),
    "16Uto32": (16, 32),
    "16Sto32": (16, 32),
    "32to8": (32, 8),
    "32to16": (32, 16),
    "64to32": (64, 32),
    "64HIto32": (64, 32),
    "1Uto32": (1, 32),
}
