"""Hand-written RV32IM-to-VEX lifter, with the five angr bugs seedable.

This module deliberately reimplements instruction semantics *by hand*,
independently from the formal specification — the methodology the paper
critiques.  The five historical angr RISC-V lifter bugs (Sect. V-A,
reported and fixed in angr-platforms PR #64) can be re-introduced
individually via the ``bugs`` parameter:

``sra-logical``
    (1) arithmetic shifts (SRA/SRAI) modelled as logical shifts.
``shift-amount-index``
    (2) R-type shifts use low bits of the rs2 *register index* instead
    of the rs2 register *value* as the shift amount.
``load-extension``
    (3) loads zero/sign-extend incorrectly (extensions swapped).
``shamt-signed``
    (4) the I-type shift amount treated as a *signed* 5-bit value, so
    ``x << 31`` becomes ``x << -1`` (Fig. 5's false positive/negative).
``signed-compare-unsigned``
    (5) signed comparisons (SLT/SLTI/BLT/BGE) compare unsigned.

With ``bugs=frozenset()`` the lifter is the *fixed* (post-PR) version:
its behaviour must agree with the formal specification, which the
differential test-suite verifies instruction by instruction.
"""

from __future__ import annotations

from typing import Optional

from ...spec import fields
from ...spec.decoder import Decoder
from ...spec.isa import ISA
from .ir import (
    IRSB,
    Binop,
    Const,
    Exit,
    Get,
    IMark,
    ITE,
    JumpKind,
    Load,
    Put,
    RdTmp,
    Store,
    Unop,
    WrTmp,
)

__all__ = ["VexLifter", "FIVE_ANGR_BUGS", "BUG_DESCRIPTIONS"]

BUG_SRA = "sra-logical"
BUG_SHIFT_INDEX = "shift-amount-index"
BUG_LOAD_EXT = "load-extension"
BUG_SHAMT_SIGNED = "shamt-signed"
BUG_SIGNED_CMP = "signed-compare-unsigned"

FIVE_ANGR_BUGS = frozenset(
    {BUG_SRA, BUG_SHIFT_INDEX, BUG_LOAD_EXT, BUG_SHAMT_SIGNED, BUG_SIGNED_CMP}
)

BUG_DESCRIPTIONS = {
    BUG_SRA: "arithmetic shift (SRA) modelled as logical shift",
    BUG_SHIFT_INDEX: "R-type shift amount taken from register index, not value",
    BUG_LOAD_EXT: "load instructions zero-/sign-extend incorrectly",
    BUG_SHAMT_SIGNED: "I-type shift amount treated as signed integer",
    BUG_SIGNED_CMP: "signed comparisons compare unsigned",
}

_ALL_ONES = Const(0xFFFFFFFF)
_ZERO = Const(0)


class VexLifter:
    """Lift one RV32IM instruction word into a single-instruction IRSB."""

    def __init__(self, isa: ISA, bugs: frozenset = frozenset()):
        unknown = bugs - FIVE_ANGR_BUGS
        if unknown:
            raise ValueError(f"unknown bug flags: {sorted(unknown)}")
        self.decoder: Decoder = isa.decoder
        self.bugs = frozenset(bugs)

    # ------------------------------------------------------------------

    def lift(self, word: int, pc: int) -> IRSB:
        decoded = self.decoder.decode(word, pc)
        method = getattr(self, f"_lift_{decoded.name}", None)
        if method is None:
            raise NotImplementedError(f"lifter: no translation for {decoded.name}")
        return method(word, pc)

    # -- helpers ---------------------------------------------------------

    @staticmethod
    def _fallthrough(stmts, pc, jumpkind=JumpKind.BORING) -> IRSB:
        return IRSB(tuple([IMark(pc)] + stmts), Const((pc + 4) & 0xFFFFFFFF), jumpkind)

    def _slt_op(self) -> str:
        return "CmpLT32U" if BUG_SIGNED_CMP in self.bugs else "CmpLT32S"

    def _sge_op(self) -> str:
        return "CmpLE32U" if BUG_SIGNED_CMP in self.bugs else "CmpLE32S"

    def _sar_op(self) -> str:
        return "Shr32" if BUG_SRA in self.bugs else "Sar32"

    def _shamt_const(self, word: int) -> Const:
        shamt = fields.shamt(word)
        if BUG_SHAMT_SIGNED in self.bugs:
            # Sign-extend the 5-bit field: 31 becomes -1 == 0xffffffff.
            shamt = fields.sign_extend(shamt, 5)
        return Const(shamt)

    def _reg_shift_amount(self, word: int) -> "IRExpr":
        if BUG_SHIFT_INDEX in self.bugs:
            # The historical bug: use the *index* bits of rs2.
            return Const(fields.rs2(word) & 0x1F)
        return Binop("And32", Get(fields.rs2(word)), Const(0x1F))

    # -- U-type ----------------------------------------------------------

    def _lift_lui(self, word, pc):
        return self._fallthrough([Put(fields.rd(word), Const(fields.imm_u(word)))], pc)

    def _lift_auipc(self, word, pc):
        value = (pc + fields.imm_u(word)) & 0xFFFFFFFF
        return self._fallthrough([Put(fields.rd(word), Const(value))], pc)

    # -- jumps -----------------------------------------------------------

    def _lift_jal(self, word, pc):
        target = (pc + fields.imm_j(word)) & 0xFFFFFFFF
        stmts = [IMark(pc), Put(fields.rd(word), Const((pc + 4) & 0xFFFFFFFF))]
        return IRSB(tuple(stmts), Const(target), JumpKind.CALL)

    def _lift_jalr(self, word, pc):
        target = Binop(
            "And32",
            Binop("Add32", Get(fields.rs1(word)), Const(fields.imm_i(word))),
            Const(0xFFFFFFFE),
        )
        stmts = [
            IMark(pc),
            WrTmp(0, target),
            Put(fields.rd(word), Const((pc + 4) & 0xFFFFFFFF)),
        ]
        return IRSB(tuple(stmts), RdTmp(0), JumpKind.RET)

    # -- branches ---------------------------------------------------------

    def _lift_branch(self, word, pc, cond) -> IRSB:
        target = (pc + fields.imm_b(word)) & 0xFFFFFFFF
        stmts = [IMark(pc), WrTmp(0, cond), Exit(RdTmp(0), target)]
        return IRSB(tuple(stmts), Const((pc + 4) & 0xFFFFFFFF), JumpKind.BORING)

    def _lift_beq(self, word, pc):
        cond = Binop("CmpEQ32", Get(fields.rs1(word)), Get(fields.rs2(word)))
        return self._lift_branch(word, pc, cond)

    def _lift_bne(self, word, pc):
        cond = Binop("CmpNE32", Get(fields.rs1(word)), Get(fields.rs2(word)))
        return self._lift_branch(word, pc, cond)

    def _lift_blt(self, word, pc):
        cond = Binop(self._slt_op(), Get(fields.rs1(word)), Get(fields.rs2(word)))
        return self._lift_branch(word, pc, cond)

    def _lift_bge(self, word, pc):
        cond = Binop(self._sge_op(), Get(fields.rs2(word)), Get(fields.rs1(word)))
        return self._lift_branch(word, pc, cond)

    def _lift_bltu(self, word, pc):
        cond = Binop("CmpLT32U", Get(fields.rs1(word)), Get(fields.rs2(word)))
        return self._lift_branch(word, pc, cond)

    def _lift_bgeu(self, word, pc):
        cond = Binop("CmpLE32U", Get(fields.rs2(word)), Get(fields.rs1(word)))
        return self._lift_branch(word, pc, cond)

    # -- loads / stores ----------------------------------------------------

    def _load_addr(self, word):
        return Binop("Add32", Get(fields.rs1(word)), Const(fields.imm_i(word)))

    def _lift_load(self, word, pc, width: int, signed: bool) -> IRSB:
        if BUG_LOAD_EXT in self.bugs:
            signed = not signed  # the extensions were swapped
        ext = {
            (8, False): "8Uto32",
            (8, True): "8Sto32",
            (16, False): "16Uto32",
            (16, True): "16Sto32",
        }.get((width, signed))
        stmts = [WrTmp(0, Load(self._load_addr(word), width))]
        value = RdTmp(0) if ext is None else Unop(ext, RdTmp(0))
        stmts.append(Put(fields.rd(word), value))
        return self._fallthrough(stmts, pc)

    def _lift_lb(self, word, pc):
        return self._lift_load(word, pc, 8, signed=True)

    def _lift_lh(self, word, pc):
        return self._lift_load(word, pc, 16, signed=True)

    def _lift_lw(self, word, pc):
        return self._lift_load(word, pc, 32, signed=True)

    def _lift_lbu(self, word, pc):
        return self._lift_load(word, pc, 8, signed=False)

    def _lift_lhu(self, word, pc):
        return self._lift_load(word, pc, 16, signed=False)

    def _lift_store(self, word, pc, width: int) -> IRSB:
        addr = Binop("Add32", Get(fields.rs1(word)), Const(fields.imm_s(word)))
        value = Get(fields.rs2(word))
        if width == 8:
            value = Unop("32to8", value)
        elif width == 16:
            value = Unop("32to16", value)
        return self._fallthrough([Store(addr, value, width)], pc)

    def _lift_sb(self, word, pc):
        return self._lift_store(word, pc, 8)

    def _lift_sh(self, word, pc):
        return self._lift_store(word, pc, 16)

    def _lift_sw(self, word, pc):
        return self._lift_store(word, pc, 32)

    # -- OP-IMM ------------------------------------------------------------

    def _lift_op_imm(self, word, pc, op: str) -> IRSB:
        expr = Binop(op, Get(fields.rs1(word)), Const(fields.imm_i(word)))
        return self._fallthrough([Put(fields.rd(word), expr)], pc)

    def _lift_addi(self, word, pc):
        return self._lift_op_imm(word, pc, "Add32")

    def _lift_xori(self, word, pc):
        return self._lift_op_imm(word, pc, "Xor32")

    def _lift_ori(self, word, pc):
        return self._lift_op_imm(word, pc, "Or32")

    def _lift_andi(self, word, pc):
        return self._lift_op_imm(word, pc, "And32")

    def _lift_slti(self, word, pc):
        cond = Binop(self._slt_op(), Get(fields.rs1(word)), Const(fields.imm_i(word)))
        return self._fallthrough([Put(fields.rd(word), Unop("1Uto32", cond))], pc)

    def _lift_sltiu(self, word, pc):
        cond = Binop("CmpLT32U", Get(fields.rs1(word)), Const(fields.imm_i(word)))
        return self._fallthrough([Put(fields.rd(word), Unop("1Uto32", cond))], pc)

    def _lift_slli(self, word, pc):
        expr = Binop("Shl32", Get(fields.rs1(word)), self._shamt_const(word))
        return self._fallthrough([Put(fields.rd(word), expr)], pc)

    def _lift_srli(self, word, pc):
        expr = Binop("Shr32", Get(fields.rs1(word)), self._shamt_const(word))
        return self._fallthrough([Put(fields.rd(word), expr)], pc)

    def _lift_srai(self, word, pc):
        expr = Binop(self._sar_op(), Get(fields.rs1(word)), self._shamt_const(word))
        return self._fallthrough([Put(fields.rd(word), expr)], pc)

    # -- OP ------------------------------------------------------------------

    def _lift_op(self, word, pc, op: str) -> IRSB:
        expr = Binop(op, Get(fields.rs1(word)), Get(fields.rs2(word)))
        return self._fallthrough([Put(fields.rd(word), expr)], pc)

    def _lift_add(self, word, pc):
        return self._lift_op(word, pc, "Add32")

    def _lift_sub(self, word, pc):
        return self._lift_op(word, pc, "Sub32")

    def _lift_xor(self, word, pc):
        return self._lift_op(word, pc, "Xor32")

    def _lift_or(self, word, pc):
        return self._lift_op(word, pc, "Or32")

    def _lift_and(self, word, pc):
        return self._lift_op(word, pc, "And32")

    def _lift_slt(self, word, pc):
        cond = Binop(self._slt_op(), Get(fields.rs1(word)), Get(fields.rs2(word)))
        return self._fallthrough([Put(fields.rd(word), Unop("1Uto32", cond))], pc)

    def _lift_sltu(self, word, pc):
        cond = Binop("CmpLT32U", Get(fields.rs1(word)), Get(fields.rs2(word)))
        return self._fallthrough([Put(fields.rd(word), Unop("1Uto32", cond))], pc)

    def _lift_sll(self, word, pc):
        expr = Binop("Shl32", Get(fields.rs1(word)), self._reg_shift_amount(word))
        return self._fallthrough([Put(fields.rd(word), expr)], pc)

    def _lift_srl(self, word, pc):
        expr = Binop("Shr32", Get(fields.rs1(word)), self._reg_shift_amount(word))
        return self._fallthrough([Put(fields.rd(word), expr)], pc)

    def _lift_sra(self, word, pc):
        expr = Binop(self._sar_op(), Get(fields.rs1(word)), self._reg_shift_amount(word))
        return self._fallthrough([Put(fields.rd(word), expr)], pc)

    # -- M extension ----------------------------------------------------------

    def _lift_mul(self, word, pc):
        return self._lift_op(word, pc, "Mul32")

    def _mulh_common(self, word, pc, op: str) -> IRSB:
        product = Binop(op, Get(fields.rs1(word)), Get(fields.rs2(word)))
        stmts = [WrTmp(0, product), Put(fields.rd(word), Unop("64HIto32", RdTmp(0)))]
        return self._fallthrough(stmts, pc)

    def _lift_mulh(self, word, pc):
        return self._mulh_common(word, pc, "MullS32")

    def _lift_mulhu(self, word, pc):
        return self._mulh_common(word, pc, "MullU32")

    def _lift_mulhsu(self, word, pc):
        return self._mulh_common(word, pc, "MullSU32")

    def _lift_divu(self, word, pc):
        rs1, rs2 = Get(fields.rs1(word)), Get(fields.rs2(word))
        expr = ITE(Binop("CmpEQ32", rs2, _ZERO), _ALL_ONES, Binop("DivU32", rs1, rs2))
        return self._fallthrough([Put(fields.rd(word), expr)], pc)

    def _lift_div(self, word, pc):
        rs1, rs2 = Get(fields.rs1(word)), Get(fields.rs2(word))
        overflow = Binop(
            "And32",
            Unop("1Uto32", Binop("CmpEQ32", rs1, Const(0x80000000))),
            Unop("1Uto32", Binop("CmpEQ32", rs2, _ALL_ONES)),
        )
        expr = ITE(
            Binop("CmpEQ32", rs2, _ZERO),
            _ALL_ONES,
            ITE(
                Binop("CmpNE32", overflow, _ZERO),
                Const(0x80000000),
                Binop("DivS32", rs1, rs2),
            ),
        )
        return self._fallthrough([Put(fields.rd(word), expr)], pc)

    def _lift_remu(self, word, pc):
        rs1, rs2 = Get(fields.rs1(word)), Get(fields.rs2(word))
        expr = ITE(Binop("CmpEQ32", rs2, _ZERO), rs1, Binop("ModU32", rs1, rs2))
        return self._fallthrough([Put(fields.rd(word), expr)], pc)

    def _lift_rem(self, word, pc):
        rs1, rs2 = Get(fields.rs1(word)), Get(fields.rs2(word))
        overflow = Binop(
            "And32",
            Unop("1Uto32", Binop("CmpEQ32", rs1, Const(0x80000000))),
            Unop("1Uto32", Binop("CmpEQ32", rs2, _ALL_ONES)),
        )
        expr = ITE(
            Binop("CmpEQ32", rs2, _ZERO),
            rs1,
            ITE(Binop("CmpNE32", overflow, _ZERO), _ZERO, Binop("ModS32", rs1, rs2)),
        )
        return self._fallthrough([Put(fields.rd(word), expr)], pc)

    # -- system -----------------------------------------------------------------

    def _lift_fence(self, word, pc):
        return self._fallthrough([], pc)

    def _lift_ecall(self, word, pc):
        return self._fallthrough([], pc, jumpkind=JumpKind.SYSCALL)

    def _lift_ebreak(self, word, pc):
        return self._fallthrough([], pc, jumpkind=JumpKind.TRAP)
