"""angr-style symbolic execution engine over the VEX-like IR.

This engine mirrors the *indirect IR-based* methodology (Fig. 1, path 2):
binary code is lifted to VEX IR by a hand-written lifter, and the IR is
then symbolized.  Performance characteristics follow angr's design:

* every value is represented as a term object (claripy builds an AST for
  each value — there is no concrete fast path), hence ``force_terms``;
* instructions are re-lifted on every visit by default (``lift_cache``
  can be enabled for the ablation benchmark), modelling the per-step IR
  processing overhead the paper's Sect. V-B discusses ("lower execution
  rate ... because its symbolic reasoning is implemented in Python");
* every symbolic branch triggers *eager successor feasibility checks*:
  angr's SimManager is a static (non-concolic) executor that asks the
  solver whether each of the two successor states is satisfiable at the
  branch, instead of deferring to flip-time like the offline executors
  (``eager_checks=False`` disables this for the ablation).

With ``bugs=FIVE_ANGR_BUGS`` the engine reproduces the buggy angr
behaviour in Table I (marked †) and Fig. 5; with no bugs it models the
fixed angr used in the paper's performance comparison.
"""

from __future__ import annotations

from typing import Optional

from ...arch.hart import HaltReason
from ...smt import bvops
from ...smt import terms as T
from ..common import ConcolicMachine
from ...core.symvalue import SymValue
from .ir import (
    IRSB,
    Binop,
    Const,
    Exit,
    Get,
    IMark,
    ITE,
    JumpKind,
    Load,
    Put,
    RdTmp,
    Store,
    Unop,
    WrTmp,
)
from .lifter import VexLifter

__all__ = ["VexEngine"]

_WORD = 0xFFFFFFFF


class VexEngine(ConcolicMachine):
    """Concolic interpreter for single-instruction VEX IRSBs."""

    name = "angr-like"

    def __init__(
        self,
        isa,
        image,
        bugs=frozenset(),
        lift_cache=False,
        eager_checks=True,
        **kwargs,
    ):
        kwargs.setdefault("force_terms", True)
        super().__init__(isa, image, **kwargs)
        self.lifter = VexLifter(isa, bugs)
        self.lift_cache_enabled = lift_cache
        self.eager_checks = eager_checks
        self._feasibility_solver = None
        self._lift_cache: dict[int, IRSB] = {}
        self._tmps: dict[int, SymValue] = {}

    def _check_successors(self, guard: SymValue) -> None:
        """angr-style eager feasibility checks for both successors.

        The offline executors defer satisfiability questions to branch
        flipping; angr's SimManager instead queries the solver for the
        guard and its negation at every symbolic branch.  The results do
        not influence the concolic trace — the cost is the point.
        """
        from ...smt.solver import Solver

        if self._feasibility_solver is None:
            self._feasibility_solver = Solver()
        condition = guard.condition_term()
        prefix = self.trace.conditions()
        self._feasibility_solver.check(prefix + [condition])
        self._feasibility_solver.check(prefix + [T.bnot(condition)])

    # ------------------------------------------------------------------

    def _lift(self, pc: int) -> IRSB:
        if self.lift_cache_enabled:
            irsb = self._lift_cache.get(pc)
            if irsb is None:
                irsb = self.lifter.lift(self.memory.read(pc, 32), pc)
                self._lift_cache[pc] = irsb
            return irsb
        return self.lifter.lift(self.memory.read(pc, 32), pc)

    def step(self) -> None:
        irsb = self._lift(self.pc)
        # angr produces each step's successor as a *copied* SimState
        # (register plugin and bookkeeping duplicated per step); model
        # that per-step state-object churn honestly.
        self.regs = list(self.regs)
        self._tmps = {}
        taken_exit: Optional[int] = None
        for stmt in irsb.stmts:
            if isinstance(stmt, IMark):
                continue
            if isinstance(stmt, WrTmp):
                self._tmps[stmt.tmp] = self._eval(stmt.expr)
            elif isinstance(stmt, Put):
                self.write_reg(stmt.reg, self._eval(stmt.expr))
            elif isinstance(stmt, Store):
                address = self._eval(stmt.addr)
                value = self._eval(stmt.value)
                self.store_value(address, value, stmt.width)
            elif isinstance(stmt, Exit):
                guard = self._eval(stmt.guard)
                taken = bool(guard.concrete)
                if (
                    self.eager_checks
                    and guard.term is not None
                    and not guard.term.is_const
                ):
                    self._check_successors(guard)
                self.record_branch(guard, taken)
                if taken:
                    taken_exit = stmt.target
                    break
            else:  # pragma: no cover - exhaustive over IRStmt
                raise NotImplementedError(f"unknown statement {stmt!r}")
        self.instret += 1
        if taken_exit is not None:
            self.pc = taken_exit
            return
        next_value = self._eval(irsb.next)
        if next_value.term is not None and not next_value.term.is_const:
            pinned = T.eq(next_value.term, T.bv(next_value.concrete, 32))
            self.trace.add_assumption(pinned, self.pc)
        next_pc = next_value.concrete
        if irsb.jumpkind == JumpKind.SYSCALL:
            self.pc = next_pc
            self.do_ecall()
            return
        if irsb.jumpkind == JumpKind.TRAP:
            self._halt(HaltReason.EBREAK)
            return
        self.pc = next_pc

    # ------------------------------------------------------------------
    # IR expression evaluation (always builds terms, like claripy)
    # ------------------------------------------------------------------

    _BINOP_TABLE = {
        "Add32": ("add", 32),
        "Sub32": ("sub", 32),
        "Mul32": ("mul", 32),
        "DivU32": ("udiv", 32),
        "DivS32": ("sdiv", 32),
        "ModU32": ("urem", 32),
        "ModS32": ("srem", 32),
        "And32": ("and", 32),
        "Or32": ("or", 32),
        "Xor32": ("xor", 32),
        "Shl32": ("shl", 32),
        "Shr32": ("lshr", 32),
        "Sar32": ("ashr", 32),
    }

    _CMP_TABLE = {
        "CmpEQ32": "eq",
        "CmpNE32": "ne",
        "CmpLT32U": "ult",
        "CmpLE32U": "ule",
        "CmpLT32S": "slt",
        "CmpLE32S": "sle",
    }

    def _eval(self, expr) -> SymValue:
        domain = self.domain
        if isinstance(expr, Const):
            return domain.const(expr.value, expr.width)
        if isinstance(expr, RdTmp):
            return self._tmps[expr.tmp]
        if isinstance(expr, Get):
            return self.read_reg(expr.reg)
        if isinstance(expr, Binop):
            op = expr.op
            table = self._BINOP_TABLE.get(op)
            if table is not None:
                name, width = table
                return domain.binop(name, self._eval(expr.lhs), self._eval(expr.rhs), width)
            cmp_name = self._CMP_TABLE.get(op)
            if cmp_name is not None:
                return domain.cmpop(
                    cmp_name, self._eval(expr.lhs), self._eval(expr.rhs), 32
                )
            if op in ("MullS32", "MullU32", "MullSU32"):
                lhs = self._eval(expr.lhs)
                rhs = self._eval(expr.rhs)
                lhs64 = domain.ext("sext" if op != "MullU32" else "zext", lhs, 32, 32)
                rhs64 = domain.ext("sext" if op == "MullS32" else "zext", rhs, 32, 32)
                return domain.binop("mul", lhs64, rhs64, 64)
            raise NotImplementedError(f"unknown binop {op}")
        if isinstance(expr, Unop):
            arg = self._eval(expr.arg)
            op = expr.op
            if op == "Not32":
                return domain.unop("not", arg, 32)
            if op in ("8Uto32", "16Uto32"):
                return domain.ext("zext", arg, 32 - arg.width, arg.width)
            if op in ("8Sto32", "16Sto32"):
                return domain.ext("sext", arg, 32 - arg.width, arg.width)
            if op == "1Uto32":
                return domain.ext("zext", arg, 31, 1)
            if op == "32to8":
                return domain.extract(arg, 7, 0)
            if op == "32to16":
                return domain.extract(arg, 15, 0)
            if op == "64to32":
                return domain.extract(arg, 31, 0)
            if op == "64HIto32":
                return domain.extract(arg, 63, 32)
            raise NotImplementedError(f"unknown unop {op}")
        if isinstance(expr, Load):
            return self.load_value(self._eval(expr.addr), expr.width)
        if isinstance(expr, ITE):
            cond = self._eval(expr.cond)
            return domain.ite(cond, self._eval(expr.iftrue), self._eval(expr.iffalse), 32)
        raise NotImplementedError(f"unknown IR expression {expr!r}")
