"""Legacy setup shim.

The execution environment has no ``wheel`` package and no network, so
PEP 517 editable installs (which need ``bdist_wheel``) are unavailable.
Keeping a classic ``setup.py`` lets ``pip install -e .`` take the legacy
``setup.py develop`` path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
